(* Sharded level-synchronized parallel BFS.

   The previous engine parallelized only successor *generation*: workers
   expanded slices of the frontier into buffers and the main domain then
   deduplicated every candidate sequentially through one shared Store —
   an Amdahl bottleneck that made pool4 measurably slower than pool1.

   This engine shards the whole pipeline by state fingerprint
   ({!Fingerprint}).  Domain [w] owns shard [w] of the visited set
   ({!Shard_table}): it is the only domain that inserts there, so
   deduplication runs with zero synchronization on the table itself.
   Within a BFS wave:

   - each domain drains its own work deque ({!Deque}) of frontier
     states (all owned by its shard), expanding successors into a
     scratch buffer exactly like the sequential engine — duplicates
     never allocate;
   - a successor owned by the expanding domain is probed and inserted
     directly; one owned by another shard is appended to a per-
     destination batch and handed off [batch_cap] states at a time
     (one mutex acquisition per batch, not per state);
   - a domain whose deque runs dry first drains its inbox of handed-off
     batches, then steals a batch of frontier items from the tail of
     another domain's deque — expansion is shard-agnostic, only
     insertion is owned;
   - the wave ends by quiescence: a global in-flight counter tracks
     unexpanded frontier items plus live hand-off batches; when it
     reaches zero no same-wave work can exist anywhere and every
     domain exits to the pool barrier.  Idle domains back off (spin,
     then sleep) and count idle epochs for telemetry.

   Waves are still globally synchronized, which is what keeps the
   engine's observable semantics bit-identical to {!Explore.run} (the
   property the fuzz seq-vs-par oracle pins): states inserted during
   wave [d] are exactly the BFS level [d+1], so [distinct], [generated]
   and [depth] all match the sequential engine on a Pass, and a
   violation is still reported with a shortest counterexample.

   Fingerprint-only mode ([fingerprint_only:true]) additionally drops
   the stored states, TLC-style: the visited set keeps 63-bit
   fingerprints only, cutting memory per state by ~an order of
   magnitude at a ~2^-63-per-pair risk of conflating two states.
   Counterexample traces are then rebuilt by replaying the recorded
   (pid, pc, alt) parent chain from the initial state. *)

let now () = Unix.gettimeofday ()

let batch_cap = 64
let steal_max = 64

(* One hand-off batch: up to [batch_cap] candidate states (flat), with
   their fingerprints and parent metadata.  Allocated per flush and
   dropped after draining; one allocation per ~64 states. *)
type batch = {
  b_data : int array;
  b_fps : int array;
  b_parents : int array;
  b_vias : int array;
  mutable b_n : int;
}

let fresh_batch words =
  {
    b_data = Array.make (batch_cap * words) 0;
    b_fps = Array.make batch_cap 0;
    b_parents = Array.make batch_cap 0;
    b_vias = Array.make batch_cap 0;
    b_n = 0;
  }

type inbox = { i_mutex : Mutex.t; mutable i_batches : batch list }

(* (pid, pc, alt, flick) packed into one int; pc and alt are tiny by
   construction (mxlang programs have dozens of steps), pid fits 12
   bits, and the flicker rank is capped at 2^26 by {!Regsem.Flicker} —
   62 bits total. *)
let pack_via ~pid ~pc ~alt ~flick =
  (flick lsl 36) lor (pid lsl 24) lor (pc lsl 8) lor alt
let via_pid v = (v lsr 24) land 0xfff
let via_pc v = (v lsr 8) land 0xffff
let via_alt v = v land 0xff
let via_flick v = v lsr 36

(* Per-domain mutable state.  Written only by its domain during a wave;
   read by the main domain after the pool barrier. *)
type dstate = {
  mutable d_generated : int;
  mutable d_inserts : int;
  mutable d_steals : int;  (* successful steal operations *)
  mutable d_steal_items : int;
  mutable d_batches : int;  (* hand-off batches flushed *)
  mutable d_handoff : int;  (* states handed off *)
  mutable d_idle : int;  (* idle epochs (no work found) *)
  mutable d_violation_gid : int;
  mutable d_violation_inv : string;
  mutable d_deadlock_gid : int;
  d_scratch : int array;  (* successor construction buffer *)
  d_probe : int array;  (* batch-drain probe buffer *)
  d_slot : Deque.slot;
  d_steal_gids : int array;
  d_steal_states : State.packed array;
  d_out : batch array;  (* outgoing batch per destination shard *)
  d_staged : (string * (State.packed -> bool)) array;
  d_canon : State.packed -> unit;  (* per-domain canonicalizer *)
}

let run ?invariants ?constraint_ ?(max_states = 5_000_000) ?domains ?pool
    ?(fingerprint_only = false) ?hash ?(reduce = Reduce.Off) ?progress ?metrics
    sys =
  let invariants =
    match invariants with
    | Some l -> l
    | None -> [ Invariant.mutex; Invariant.no_overflow ]
  in
  (* Same gate as the sequential engine: a custom invariant the
     reduction cannot certify as pc/shared-only turns it off wholesale. *)
  let red =
    if reduce = Reduce.Off || Reduce.invariants_reducible invariants then
      Reduce.make reduce sys
    else Reduce.make Reduce.Off sys
  in
  let sym_on = Reduce.symmetry_active red in
  let ndomains =
    match (pool, domains) with
    | Some p, _ -> Pool.size p
    | None, Some d when d >= 1 -> d
    | None, Some _ -> invalid_arg "Par_explore.run: domains must be >= 1"
    | None, None -> min 8 (Domain.recommended_domain_count ())
  in
  let t0 = now () in
  let lay = System.layout sys in
  let words = lay.State.words in
  let mode = if fingerprint_only then Shard_table.Fp_only else Shard_table.Exact in
  let tbl = Shard_table.create ?hash ~mode ~nshards:ndomains ~words () in
  (* Per-shard parent metadata, indexed by local id. *)
  let meta_parent = Array.init ndomains (fun _ -> Vec.create ()) in
  let meta_via = Array.init ndomains (fun _ -> Vec.create ()) in
  let cur = ref (Array.init ndomains (fun _ -> Deque.create ())) in
  let nxt = ref (Array.init ndomains (fun _ -> Deque.create ())) in
  let inboxes =
    Array.init ndomains (fun _ -> { i_mutex = Mutex.create (); i_batches = [] })
  in
  let pending = Atomic.make 0 in
  let stop = Atomic.make false in
  let dstates =
    Array.init ndomains (fun _ ->
        {
          d_generated = 0;
          d_inserts = 0;
          d_steals = 0;
          d_steal_items = 0;
          d_batches = 0;
          d_handoff = 0;
          d_idle = 0;
          d_violation_gid = -1;
          d_violation_inv = "";
          d_deadlock_gid = -1;
          d_scratch = Array.make words 0;
          d_probe = Array.make words 0;
          d_slot = Deque.slot ();
          d_steal_gids = Array.make steal_max 0;
          d_steal_states = Array.make steal_max [||];
          d_out = Array.init ndomains (fun _ -> fresh_batch words);
          d_canon = Reduce.canonizer red;
          d_staged =
            Array.of_list
              (List.map
                 (fun inv -> (inv.Invariant.name, Invariant.stage inv sys))
                 invariants);
        })
  in
  let expand_ok s =
    match constraint_ with None -> true | Some c -> c sys s
  in
  let depth = ref 0 in
  (* Counterexample reconstruction by replay: collect the (pid, pc,
     alt) chain from the root, then re-execute it from the initial
     state — works identically whether or not states were stored. *)
  let trace gid =
    let rec chain gid acc =
      let sh = Shard_table.shard_of_gid tbl gid in
      let lc = Shard_table.local_of_gid tbl gid in
      let parent = Vec.get meta_parent.(sh) lc in
      if parent < 0 then acc
      else chain parent (Vec.get meta_via.(sh) lc :: acc)
    in
    let p = System.program sys in
    let init = System.initial sys in
    let s = ref init in
    (* Recorded (pid, pc, alt, flick) tuples are relative to the
       *canonical* parent states the search expanded, so the replay must
       re-canonicalize after every move; the resulting canonical-
       coordinates trace is mapped back to a genuine original-pid run at
       the end. *)
    let rest =
      List.map
        (fun via ->
          let pid = via_pid via and pc = via_pc via and alt = via_alt via in
          s := System.apply_move sys !s ~pid ~pc ~alt ~flick:(via_flick via);
          if sym_on then s := fst (Reduce.canon red !s);
          { Trace.pid; step_name = p.steps.(pc).step_name; state = !s })
        (chain gid [])
    in
    Reduce.decanonicalize red
      ({ Trace.pid = -1; step_name = "<init>"; state = init } :: rest)
  in
  let total_generated () =
    Array.fold_left (fun acc d -> acc + d.d_generated) 1 dstates
  in
  let finish outcome =
    let stats =
      {
        Explore.generated = total_generated ();
        distinct = Shard_table.total tbl;
        depth = !depth;
        runtime = now () -. t0;
      }
    in
    (match metrics with
    | None -> ()
    | Some m ->
        let open Telemetry.Metrics in
        let sum f = Array.fold_left (fun acc d -> acc + f d) 0 dstates in
        add (counter m "par_explore.steals") (sum (fun d -> d.d_steals));
        add (counter m "par_explore.steal_items") (sum (fun d -> d.d_steal_items));
        add (counter m "par_explore.handoff_batches") (sum (fun d -> d.d_batches));
        add (counter m "par_explore.handoff_states") (sum (fun d -> d.d_handoff));
        add (counter m "par_explore.idle_epochs") (sum (fun d -> d.d_idle));
        add (counter m "par_explore.fp_collisions") (Shard_table.collisions tbl);
        let mn, mx = Shard_table.occupancy tbl in
        set (gauge m "par_explore.shard_occupancy_min") (float_of_int mn);
        set (gauge m "par_explore.shard_occupancy_max") (float_of_int mx);
        set (gauge m "par_explore.table_mb")
          (float_of_int (Shard_table.memory_bytes tbl) /. 1048576.0));
    Explore.record_finish ?progress ?metrics ~prefix:"par_explore" outcome
      {
        Explore.generated = stats.Explore.generated;
        distinct = stats.Explore.distinct;
        depth = stats.Explore.depth;
        runtime = stats.Explore.runtime;
      };
    { Explore.outcome; stats }
  in
  let exception Stop of Explore.result in
  (* Probe-and-insert a candidate into shard [w] (caller must be its
     owning domain, or the main domain between waves).  [s] is a
     scratch buffer; its contents are copied if the state is new. *)
  let insert_candidate w (d : dstate) ~fp ~parent ~via (s : State.packed) =
    match Shard_table.insert tbl ~shard:w ~fp s with
    | -1 -> ()
    | local ->
        let g = Shard_table.gid tbl ~shard:w ~local in
        ignore (Vec.push meta_parent.(w) parent);
        ignore (Vec.push meta_via.(w) via);
        d.d_inserts <- d.d_inserts + 1;
        (* Soft capacity check: exact accounting happens at the wave
           barrier; this just stops a runaway wave early.  [total] reads
           other shards' counters racily — good enough for a cutoff. *)
        if
          d.d_inserts land 255 = 0
          && Shard_table.total tbl > max_states
        then Atomic.set stop true;
        let rec first k =
          if k >= Array.length d.d_staged then -1
          else
            let _, holds = Array.unsafe_get d.d_staged k in
            if holds s then first (k + 1) else k
        in
        (match first 0 with
        | k when k >= 0 ->
            if d.d_violation_gid < 0 then begin
              d.d_violation_gid <- g;
              d.d_violation_inv <- fst d.d_staged.(k)
            end;
            Atomic.set stop true
        | _ -> if expand_ok s then Deque.push !nxt.(w) g (Array.copy s))
  in
  (* Flush domain [w]'s outgoing batch for shard [o].  The batch was
     counted in [pending] when its first state arrived, so enqueueing
     transfers that debt to the draining owner. *)
  let flush (d : dstate) o =
    let b = d.d_out.(o) in
    if b.b_n > 0 then begin
      let ib = inboxes.(o) in
      Mutex.lock ib.i_mutex;
      ib.i_batches <- b :: ib.i_batches;
      Mutex.unlock ib.i_mutex;
      d.d_batches <- d.d_batches + 1;
      d.d_handoff <- d.d_handoff + b.b_n;
      d.d_out.(o) <- fresh_batch words
    end
  in
  let flush_all w d =
    for o = 0 to ndomains - 1 do
      if o <> w then flush d o
    done
  in
  let route (d : dstate) o ~fp ~parent ~via (s : State.packed) =
    let b = d.d_out.(o) in
    (* An empty batch going live is in-flight work: count it before it
       becomes visible so [pending] can never transiently hit zero
       while states sit in a partial buffer. *)
    if b.b_n = 0 then Atomic.incr pending;
    Array.blit s 0 b.b_data (b.b_n * words) words;
    b.b_fps.(b.b_n) <- fp;
    b.b_parents.(b.b_n) <- parent;
    b.b_vias.(b.b_n) <- via;
    b.b_n <- b.b_n + 1;
    if b.b_n = batch_cap then flush d o
  in
  (* Expand one frontier state: successors are built in the domain's
     scratch buffer; own-shard candidates insert directly, foreign ones
     are routed into batches.  Decrementing [pending] comes last so the
     item's routed work is always counted before the item itself is
     retired. *)
  let expand w (d : dstate) gid (s : State.packed) =
    let any = ref false in
    let only = Reduce.ample red s in
    System.iter_successors_scratch ~only sys s ~scratch:d.d_scratch
      (fun ~pid ~from_pc ~alt ~flick ->
        any := true;
        d.d_generated <- d.d_generated + 1;
        d.d_canon d.d_scratch;
        let fp = Shard_table.fingerprint tbl d.d_scratch in
        let o = Shard_table.owner tbl fp in
        let via = pack_via ~pid ~pc:from_pc ~alt ~flick in
        if o = w then insert_candidate w d ~fp ~parent:gid ~via d.d_scratch
        else route d o ~fp ~parent:gid ~via d.d_scratch);
    if not !any then begin
      if d.d_deadlock_gid < 0 then d.d_deadlock_gid <- gid;
      Atomic.set stop true
    end;
    Atomic.decr pending
  in
  let drain_inbox w (d : dstate) =
    let ib = inboxes.(w) in
    Mutex.lock ib.i_mutex;
    let batches = ib.i_batches in
    ib.i_batches <- [];
    Mutex.unlock ib.i_mutex;
    match batches with
    | [] -> false
    | _ ->
        List.iter
          (fun b ->
            for k = 0 to b.b_n - 1 do
              Array.blit b.b_data (k * words) d.d_probe 0 words;
              insert_candidate w d ~fp:b.b_fps.(k) ~parent:b.b_parents.(k)
                ~via:b.b_vias.(k) d.d_probe
            done;
            Atomic.decr pending)
          batches;
        true
  in
  let try_steal w (d : dstate) =
    let got = ref 0 in
    let v = ref ((w + 1) mod ndomains) in
    while !got = 0 && !v <> w do
      let n =
        Deque.steal !cur.(!v) ~gids:d.d_steal_gids ~states:d.d_steal_states
          ~max:steal_max
      in
      if n > 0 then begin
        got := n;
        d.d_steals <- d.d_steals + 1;
        d.d_steal_items <- d.d_steal_items + n
      end
      else v := (!v + 1) mod ndomains
    done;
    !got
  in
  (* One domain's share of a wave, running until global quiescence:
     no unexpanded frontier item and no live hand-off batch anywhere. *)
  let worker w =
    let d = dstates.(w) in
    let backoff = ref 0 in
    let running = ref true in
    while !running do
      if Atomic.get stop then running := false
      else if Deque.pop !cur.(w) d.d_slot then begin
        expand w d d.d_slot.s_gid d.d_slot.s_state;
        backoff := 0
      end
      else if drain_inbox w d then backoff := 0
      else begin
        flush_all w d;
        let n = try_steal w d in
        if n > 0 then begin
          for k = 0 to n - 1 do
            expand w d d.d_steal_gids.(k) d.d_steal_states.(k);
            d.d_steal_states.(k) <- [||]
          done;
          backoff := 0
        end
        else if Atomic.get pending = 0 then running := false
        else begin
          (* Idle epoch: out of local work but the wave is not over.
             Spin briefly (multicore: the gap is ns), then sleep
             (single-core: yield the CPU to whoever holds the work). *)
          d.d_idle <- d.d_idle + 1;
          incr backoff;
          if !backoff <= 32 then Domain.cpu_relax ()
          else Unix.sleepf (Float.min 0.001 (1e-5 *. float_of_int !backoff))
        end
      end
    done
  in
  (* Small waves are cheaper expanded on the main domain — with the
     workers parked there is no concurrent writer, so main may insert
     into any shard directly. *)
  let inline_wave () =
    let d = dstates.(0) in
    Array.iter
      (fun dq ->
        while Deque.pop dq d.d_slot do
          let gid = d.d_slot.s_gid and s = d.d_slot.s_state in
          let any = ref false in
          let only = Reduce.ample red s in
          System.iter_successors_scratch ~only sys s ~scratch:d.d_scratch
            (fun ~pid ~from_pc ~alt ~flick ->
              any := true;
              d.d_generated <- d.d_generated + 1;
              d.d_canon d.d_scratch;
              let fp = Shard_table.fingerprint tbl d.d_scratch in
              let o = Shard_table.owner tbl fp in
              insert_candidate o d ~fp ~parent:gid
                ~via:(pack_via ~pid ~pc:from_pc ~alt ~flick) d.d_scratch);
          if (not !any) && d.d_deadlock_gid < 0 then begin
            d.d_deadlock_gid <- gid;
            Atomic.set stop true
          end
        done)
      !cur
  in
  let frontier_size () =
    Array.fold_left (fun acc dq -> acc + Deque.length dq) 0 !cur
  in
  let wave_tick pool_for_stats frontier =
    (match metrics with
    | None -> ()
    | Some m ->
        (* Live gauges for the flight-recorder sampler, refreshed once
           per wave.  Steal/idle live values are gauges under live_*
           names because record_finish owns the bare names as
           counters. *)
        let set name v =
          Telemetry.Metrics.set (Telemetry.Metrics.gauge m name) v
        in
        set "par_explore.frontier_depth" (float_of_int frontier);
        set "par_explore.max_states" (float_of_int max_states);
        let elapsed = now () -. t0 in
        let generated = total_generated () in
        let mn, mx = Shard_table.occupancy tbl in
        set "par_explore.live_generated" (float_of_int generated);
        set "par_explore.live_distinct"
          (float_of_int (Shard_table.total tbl));
        set "par_explore.live_kstates_s"
          (if elapsed > 0.0 then float_of_int generated /. elapsed /. 1e3
           else 0.0);
        set "par_explore.shard_occupancy_min" (float_of_int mn);
        set "par_explore.shard_occupancy_max" (float_of_int mx);
        set "par_explore.live_steals"
          (float_of_int
             (Array.fold_left (fun a d -> a + d.d_steals) 0 dstates));
        set "par_explore.live_idle_epochs"
          (float_of_int
             (Array.fold_left (fun a d -> a + d.d_idle) 0 dstates));
        set "par_explore.table_mb"
          (float_of_int (Shard_table.memory_bytes tbl) /. 1048576.0));
    match progress with
    | None -> ()
    | Some p ->
        let fields () =
          let elapsed = now () -. t0 in
          let generated = total_generated () in
          let mn, mx = Shard_table.occupancy tbl in
          let base =
            [
              ("depth", Telemetry.Json.Num (float_of_int !depth));
              ("generated", Telemetry.Json.Num (float_of_int generated));
              ( "distinct",
                Telemetry.Json.Num (float_of_int (Shard_table.total tbl)) );
              ("frontier", Telemetry.Json.Num (float_of_int frontier));
              ("domains", Telemetry.Json.Num (float_of_int ndomains));
              ( "kstates_s",
                Telemetry.Json.Num
                  (if elapsed > 0.0 then
                     float_of_int generated /. elapsed /. 1e3
                   else 0.0) );
              ("shard_min", Telemetry.Json.Num (float_of_int mn));
              ("shard_max", Telemetry.Json.Num (float_of_int mx));
              ( "steals",
                Telemetry.Json.Num
                  (float_of_int
                     (Array.fold_left (fun a d -> a + d.d_steals) 0 dstates))
              );
              ( "table_mb",
                Telemetry.Json.Num
                  (float_of_int (Shard_table.memory_bytes tbl) /. 1048576.0) );
            ]
          in
          match pool_for_stats with
          | None -> base
          | Some (pl, last_busy, last_wall) ->
              let busy = Pool.busy_ns pl in
              let wall = now () in
              let dt = wall -. !last_wall in
              let fractions =
                Array.mapi
                  (fun i b ->
                    let frac =
                      if dt > 0.0 then
                        float_of_int (b - !last_busy.(i)) /. (dt *. 1e9)
                      else 0.0
                    in
                    Telemetry.Json.Num (Float.min 1.0 (Float.max 0.0 frac)))
                  busy
              in
              last_busy := busy;
              last_wall := wall;
              let total =
                Array.fold_left
                  (fun acc v ->
                    match v with Telemetry.Json.Num f -> acc +. f | _ -> acc)
                  0.0 fractions
              in
              base
              @ [
                  ( "pool_busy",
                    Telemetry.Json.Num
                      (total /. float_of_int (Array.length fractions)) );
                  ("domain_busy", Telemetry.Json.Arr (Array.to_list fractions));
                ]
        in
        Telemetry.Progress.poll p fields
  in
  (* After each wave barrier, turn per-domain records into an outcome.
     Violation wins over deadlock (both are one-wave-nondeterministic
     between domains anyway; the choice is fixed for reproducibility),
     then capacity, by exact count. *)
  let post_wave () =
    Array.iter
      (fun (d : dstate) ->
        if d.d_violation_gid >= 0 then
          raise
            (Stop
               (finish
                  (Explore.Violation
                     {
                       invariant = d.d_violation_inv;
                       trace = trace d.d_violation_gid;
                     }))))
      dstates;
    Array.iter
      (fun (d : dstate) ->
        if d.d_deadlock_gid >= 0 then
          raise (Stop (finish (Explore.Deadlock { trace = trace d.d_deadlock_gid }))))
      dstates;
    if Shard_table.total tbl > max_states then
      raise (Stop (finish Explore.Capacity))
  in
  let search ?stats_pool run_wave =
    let pool_for_stats =
      match stats_pool with
      | None -> None
      | Some pl -> Some (pl, ref (Pool.busy_ns pl), ref (now ()))
    in
    let init = System.initial sys in
    dstates.(0).d_canon init;
    dstates.(0).d_generated <- 0;
    (* [total_generated] seeds the sum with 1 for the initial state. *)
    let fp = Shard_table.fingerprint tbl init in
    let o = Shard_table.owner tbl fp in
    insert_candidate o dstates.(0) ~fp ~parent:(-1) ~via:(-1) init;
    (* The initial insert pushed into [nxt]: promote it to the first
       frontier. *)
    let tmp = !cur in
    cur := !nxt;
    nxt := tmp;
    post_wave ();
    let n = ref (frontier_size ()) in
    while !n > 0 do
      Atomic.set pending !n;
      if !n < 2 || ndomains = 1 then inline_wave () else run_wave worker;
      post_wave ();
      let tmp = !cur in
      cur := !nxt;
      nxt := tmp;
      n := frontier_size ();
      if !n > 0 then incr depth;
      wave_tick pool_for_stats !n
    done;
    finish Explore.Pass
  in
  try
    match pool with
    | Some p -> search ~stats_pool:p (fun job -> Pool.run p job)
    | None ->
        if ndomains = 1 then search (fun job -> job 0)
        else
          Pool.with_pool ndomains (fun p ->
              search ~stats_pool:p (fun job -> Pool.run p job))
  with Stop r -> r
