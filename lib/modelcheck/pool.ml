(* A persistent pool of worker domains.

   [Par_explore] used to pay a [Domain.spawn]/[Domain.join] pair per
   worker per BFS wave — tens of microseconds of setup for waves whose
   useful work is often shorter than that.  Here the domains are spawned
   once, parked on a condition variable between waves, and handed each
   wave as an indexed job; they are joined once at [shutdown].

   Synchronization is a plain mutex/condvar barrier: [run] publishes a
   job under the lock and bumps an epoch counter; each worker runs the
   job for its own index exactly once per epoch and decrements the
   outstanding count; [run] returns when the count reaches zero.  All
   job data is published under the mutex, so workers need no atomics of
   their own. *)

type t = {
  nworkers : int;
  mutex : Mutex.t;
  work_ready : Condition.t;
  work_done : Condition.t;
  mutable job : (int -> unit) option;
  mutable epoch : int;
  mutable outstanding : int;
  mutable failure : exn option;
  mutable stopping : bool;
  mutable domains : unit Domain.t list;
  busy_ns : int Atomic.t array;
      (* per worker, cumulative nanoseconds spent inside jobs — read by
         telemetry to report pool utilization *)
  jobs_run : int Atomic.t array;
}

let size p = p.nworkers

let worker p w =
  let seen = ref 0 in
  Mutex.lock p.mutex;
  let running = ref true in
  while !running do
    if p.stopping then running := false
    else if p.epoch <> !seen then begin
      seen := p.epoch;
      let job = match p.job with Some j -> j | None -> assert false in
      Mutex.unlock p.mutex;
      let t0 = Unix.gettimeofday () in
      let outcome = match job w with () -> None | exception e -> Some e in
      let spent_ns = int_of_float ((Unix.gettimeofday () -. t0) *. 1e9) in
      ignore (Atomic.fetch_and_add p.busy_ns.(w) (max 0 spent_ns));
      Atomic.incr p.jobs_run.(w);
      Mutex.lock p.mutex;
      (match (outcome, p.failure) with
      | Some e, None -> p.failure <- Some e
      | _ -> ());
      p.outstanding <- p.outstanding - 1;
      if p.outstanding = 0 then Condition.broadcast p.work_done
    end
    else Condition.wait p.work_ready p.mutex
  done;
  Mutex.unlock p.mutex

let create nworkers =
  if nworkers < 1 then invalid_arg "Pool.create: nworkers must be >= 1";
  let p =
    {
      nworkers;
      mutex = Mutex.create ();
      work_ready = Condition.create ();
      work_done = Condition.create ();
      job = None;
      epoch = 0;
      outstanding = 0;
      failure = None;
      stopping = false;
      domains = [];
      busy_ns = Array.init nworkers (fun _ -> Atomic.make 0);
      jobs_run = Array.init nworkers (fun _ -> Atomic.make 0);
    }
  in
  p.domains <- List.init nworkers (fun w -> Domain.spawn (fun () -> worker p w));
  p

let run p job =
  Mutex.lock p.mutex;
  if p.stopping then begin
    Mutex.unlock p.mutex;
    invalid_arg "Pool.run: pool is shut down"
  end;
  (match p.job with
  | Some _ ->
      Mutex.unlock p.mutex;
      invalid_arg "Pool.run: pool is busy (run is not reentrant)"
  | None -> ());
  p.failure <- None;
  p.job <- Some job;
  p.epoch <- p.epoch + 1;
  p.outstanding <- p.nworkers;
  Condition.broadcast p.work_ready;
  while p.outstanding > 0 do
    Condition.wait p.work_done p.mutex
  done;
  p.job <- None;
  let failure = p.failure in
  p.failure <- None;
  Mutex.unlock p.mutex;
  match failure with Some e -> raise e | None -> ()

let shutdown p =
  Mutex.lock p.mutex;
  if p.stopping then Mutex.unlock p.mutex
  else begin
    p.stopping <- true;
    Condition.broadcast p.work_ready;
    Mutex.unlock p.mutex;
    List.iter Domain.join p.domains;
    p.domains <- []
  end

let busy_ns p = Array.map Atomic.get p.busy_ns
let jobs_run p = Array.map Atomic.get p.jobs_run

let with_pool nworkers f =
  let p = create nworkers in
  Fun.protect ~finally:(fun () -> shutdown p) (fun () -> f p)
