(** Per-domain work deque of (global id, packed state) items for the
    sharded explorer: the owner pushes/pops the tail, thieves steal
    batches from the head.  Mutex-per-deque; no operation allocates on
    the owner's fast path. *)

type t

val create : unit -> t
val length : t -> int
val is_empty : t -> bool
val push : t -> int -> State.packed -> unit

type slot = { mutable s_gid : int; mutable s_state : State.packed }

val slot : unit -> slot

val pop : t -> slot -> bool
(** Owner-side pop from the tail into [slot]; [false] when empty. *)

val steal : t -> gids:int array -> states:State.packed array -> max:int -> int
(** Thief-side batch steal from the head into scratch arrays: takes at
    most [max] items and at most half the victim's load; returns the
    count taken. *)

val clear : t -> unit
