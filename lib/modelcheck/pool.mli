(** A persistent pool of worker domains for level-synchronized parallel
    exploration.

    Domains are spawned once at {!create} and parked on a condition
    variable between jobs, so handing a BFS wave to the workers costs a
    lock round-trip instead of a [Domain.spawn]/[Domain.join] pair per
    worker per wave. *)

type t

val create : int -> t
(** Spawn [n >= 1] worker domains.  They idle until {!run}. *)

val size : t -> int
(** The number of worker domains. *)

val run : t -> (int -> unit) -> unit
(** [run p job] executes [job w] on worker [w] for every
    [w in 0 .. size p - 1] and returns when all have finished (a
    barrier).  If any worker raises, one of the exceptions is re-raised
    here after the barrier.  Not reentrant: [job] must not call {!run}
    on the same pool. *)

val busy_ns : t -> int array
(** Per-worker cumulative nanoseconds spent running jobs since
    {!create}.  Telemetry divides successive deltas by wall time to
    report each domain's busy fraction. *)

val jobs_run : t -> int array
(** Per-worker count of jobs completed since {!create}. *)

val shutdown : t -> unit
(** Stop and join all workers.  Idempotent; the pool is unusable
    afterwards. *)

val with_pool : int -> (t -> 'a) -> 'a
(** [create], run the callback, and {!shutdown} (also on exception). *)
