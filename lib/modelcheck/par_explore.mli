(** Sharded level-synchronized parallel BFS over a persistent pool of
    OCaml 5 domains.

    Each state's {!Fingerprint.hash} assigns it to an owning domain;
    every domain deduplicates and stores its own shard of the visited
    set ({!Shard_table}) with no synchronization on the table itself.
    Within a wave, domains expand their own work deques ({!Deque}),
    hand foreign-shard successors across in batches, steal work from
    each other when idle, and detect wave completion by quiescence (a
    global in-flight counter).  This replaces the old design in which
    workers only generated successors and one domain deduplicated
    everything sequentially — the bottleneck that made pool4 slower
    than pool1.

    Waves remain globally synchronized, so the observable result is
    bit-identical to {!Explore.run}: states inserted during wave [d]
    are exactly BFS level [d+1], hence [generated], [distinct] and
    [depth] match the sequential engine on a Pass and a violation is
    reported with a shortest counterexample.  The fuzz seq-vs-par
    oracle pins this equivalence.

    On a single-core machine the extra domains add coordination
    overhead and no speedup (idle domains sleep rather than spin); the
    sharded design exists so the checker scales on real multi-core
    hosts. *)

val run :
  ?invariants:Invariant.t list ->
  ?constraint_:(System.t -> State.packed -> bool) ->
  ?max_states:int ->
  ?domains:int ->
  ?pool:Pool.t ->
  ?fingerprint_only:bool ->
  ?hash:(State.packed -> int) ->
  ?reduce:Reduce.mode ->
  ?progress:Telemetry.Progress.t ->
  ?metrics:Telemetry.Metrics.t ->
  System.t ->
  Explore.result
(** [domains] defaults to [Domain.recommended_domain_count ()], capped
    at 8, and fixes the shard count.  With [domains = 1] the whole
    search runs inline on the calling domain (one shard, no pool).
    [pool] reuses an existing pool across runs — it overrides
    [domains], is left running on return, and must not be used
    concurrently from another thread.

    [fingerprint_only] switches the visited set to
    {!Shard_table.Fp_only}: ~10x less memory per state, a ~2^-63
    per-pair chance of conflating two states, and counterexample
    traces rebuilt by replaying recorded (pid, pc, alt) moves from the
    initial state.  [hash] overrides the fingerprint function (tests
    inject colliding hashes with it).

    [reduce] composes with the sharding exactly as in {!Explore.run}:
    successors are canonicalized ({!Reduce}) before fingerprinting, so
    shard ownership, deduplication, and fingerprint-only storage all
    operate on orbit representatives; the ample filter runs in each
    domain against read-only precomputed tables.  Traces are replayed
    in canonical coordinates and mapped back to original pids.

    [progress] reports once per BFS wave (rate-limited): depth, states
    generated/distinct, frontier size, kstates/s, shard occupancy
    spread, steal count, table bytes, and — when a pool is driving the
    waves — each worker domain's busy fraction since the previous
    report.  [metrics] accumulates final stats under [par_explore.*],
    including steal/hand-off/idle counters, fingerprint collisions,
    shard occupancy, and a per-wave [par_explore.frontier_depth]
    gauge.  Both default to off. *)
