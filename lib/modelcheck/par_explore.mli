(** Level-synchronized parallel BFS over a persistent pool of OCaml 5
    domains.

    Each BFS level's frontier is split into contiguous slices across
    worker domains, which generate successor states in parallel (the
    expensive part: compiled guard evaluation and effect application)
    into per-worker reusable buffers; deduplication against the global
    state table happens sequentially between levels, in frontier order,
    so the result is bit-identical to {!Explore.run}'s reachable set.

    The worker domains are spawned once per run (or borrowed from a
    caller-supplied {!Pool.t}) and parked between waves — not respawned
    per level, which used to cost a [Domain.spawn]/[join] pair per
    worker per wave.

    Invariants are checked on insertion.  Because levels are explored in
    order, a reported violation still carries a shortest counterexample,
    exactly like the sequential engine.

    On a single-core machine this adds coordination overhead and no
    speedup; it exists so the checker scales on real multi-core hosts and
    is tested for agreement with the sequential engine. *)

val run :
  ?invariants:Invariant.t list ->
  ?constraint_:(System.t -> State.packed -> bool) ->
  ?max_states:int ->
  ?domains:int ->
  ?pool:Pool.t ->
  ?progress:Telemetry.Progress.t ->
  ?metrics:Telemetry.Metrics.t ->
  System.t ->
  Explore.result
(** [domains] defaults to [Domain.recommended_domain_count ()], capped
    at 8.  With [domains = 1] the wave machinery still runs (useful for
    differential testing) but slices are expanded inline, with no domain
    spawned.  [pool] reuses an existing pool across runs — it overrides
    [domains], is left running on return, and must not be used
    concurrently from another thread.

    [progress] reports once per BFS wave (rate-limited): depth, states
    generated/distinct, frontier size, kstates/s, store load, arena
    bytes, and — when a pool is driving the waves — each worker
    domain's busy fraction since the previous report.  [metrics]
    accumulates final stats under [par_explore.*].  Both default to
    off, leaving the wave loop unchanged. *)
