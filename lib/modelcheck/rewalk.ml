(* Counterexample re-walker.

   A checker trace records *which* label each process fired and the
   packed state after it — nothing about why the step was enabled or
   what it observed.  The re-walker replays the trace through the AST
   interpreter ([System.successors_interpreted], deliberately the
   engine that is *not* the optimised one under test) and recovers, for
   every step, the action that fired, the shared cells its guard and
   effects read with the values seen, and the writes as
   (prev -> value) diffs.  That per-step forensics is the raw material
   for causal traces and the [explain] story. *)

type write = {
  wr_var : Mxlang.Ast.var;
  wr_cell : int;
  wr_prev : int;
  wr_value : int;
}

type flick = {
  fl_var : Mxlang.Ast.var;
  fl_cell : int;
  fl_seen : int;
  fl_actual : int;
}

type step = {
  rw_pid : int;
  rw_from_pc : int;
  rw_to_pc : int;
  rw_step_name : string;  (* label fired, i.e. name of [rw_from_pc] *)
  rw_reads : Mxlang.Reads.read list;
  rw_writes : write list;
  rw_flicks : flick list;
  rw_post : State.packed;
}

type t = {
  rw_sys : System.t;
  rw_init : State.packed;
  rw_steps : step list;
}

let writes_of env ~rshared ~shared ~locals ~pid (a : Mxlang.Ast.action) =
  (* Simultaneous-assignment semantics: indices and right-hand sides are
     taken in the pre-state — through the flickered view [rshared] when
     a weak register model perturbed this step's reads — while the
     recorded previous contents come from the true pre-state. *)
  List.filter_map
    (fun (l, e) ->
      match l with
      | Mxlang.Ast.Lo _ -> None
      | Mxlang.Ast.Sh (v, ix) ->
          let value = Mxlang.Eval.eval env ~shared:rshared ~locals ~pid e in
          let idx = Mxlang.Eval.eval env ~shared:rshared ~locals ~pid ix in
          Some
            {
              wr_var = v;
              wr_cell = idx;
              wr_prev = shared.(Mxlang.Eval.offset env v + idx);
              wr_value = value;
            })
    a.effects

let of_trace sys (trace : Trace.t) =
  match trace with
  | [] -> Error "empty trace"
  | first :: rest ->
      let lay = System.layout sys in
      let env = lay.State.env in
      let program = System.program sys in
      let exception Walk_error of string in
      (try
         let _, rev_steps =
           List.fold_left
             (fun (pre, acc) (e : Trace.entry) ->
               let k = List.length acc + 1 in
               let move =
                 match
                   List.find_opt
                     (fun (m : System.move) ->
                       m.pid = e.pid && State.equal m.dest e.state)
                     (System.successors_interpreted sys pre)
                 with
                 | Some m -> m
                 | None ->
                     raise
                       (Walk_error
                          (Printf.sprintf
                             "step %d: no interpreter move of p%d reaches the \
                              recorded state (stale or corrupted trace?)"
                             k e.pid))
               in
               let action =
                 List.nth program.steps.(move.from_pc).actions move.alt
               in
               let shared = State.shared_part lay pre in
               let locals = State.locals_part lay pre e.pid in
               (* Reads are recovered against the view the move actually
                  observed: under a weak register model the recorded
                  flicker rank decodes (through the same path the search
                  used) to the values each overlapping read returned. *)
               let assignment =
                 System.flick_assignment sys pre ~pid:e.pid ~pc:move.from_pc
                   ~alt:move.alt ~flick:move.flick
               in
               let view =
                 match assignment with
                 | [] -> shared
                 | _ ->
                     let view = Array.copy shared in
                     List.iter (fun (cell, seen) -> view.(cell) <- seen)
                       assignment;
                     view
               in
               let step =
                 {
                   rw_pid = e.pid;
                   rw_from_pc = move.from_pc;
                   rw_to_pc = action.target;
                   rw_step_name = program.steps.(move.from_pc).step_name;
                   rw_reads =
                     Mxlang.Reads.of_action env ~shared:view ~locals
                       ~pid:e.pid action;
                   rw_writes =
                     writes_of env ~rshared:view ~shared ~locals ~pid:e.pid
                       action;
                   rw_flicks =
                     List.map
                       (fun (cell, seen) ->
                         let v, idx = System.var_of_cell sys cell in
                         {
                           fl_var = v;
                           fl_cell = idx;
                           fl_seen = seen;
                           fl_actual = shared.(cell);
                         })
                       assignment;
                   rw_post = e.state;
                 }
               in
               (e.state, step :: acc))
             (first.Trace.state, [])
             rest
         in
         Ok { rw_sys = sys; rw_init = first.Trace.state; rw_steps = List.rev rev_steps }
       with Walk_error msg -> Error msg)
