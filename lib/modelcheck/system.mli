(** The transition system induced by an mxlang program: interleaving of
    atomic labeled steps, exactly TLC's view of a PlusCal algorithm.

    Under a weak register model ({!Regsem.Model}), the system is the
    two-phase transform of the program ({!Regsem.Two_phase}) — writes
    become start/commit pairs — and every action additionally branches
    over the flicker views of its reads that overlap another process's
    in-flight write ({!Regsem.Flicker}).  Each such branch is one move,
    identified by its [flick] rank.  Under [Atomic] (the default) the
    engine is bit-identical to the system without this parameter. *)

type t

type move = {
  pid : int;
  from_pc : int;
  alt : int;  (** which alternative action of the step fired *)
  flick : int;
      (** flicker-view rank under a weak register model; 0 = the
          unperturbed view, and always 0 under [Atomic] *)
  dest : State.packed;
}

val make :
  ?register_model:Regsem.Model.t ->
  Mxlang.Ast.program ->
  nprocs:int ->
  bound:int ->
  t
(** Validates the program (see {!Mxlang.Validate.assert_valid}),
    precomputes the state layout, and compiles every action's guard and
    effects to closures ({!Mxlang.Compile}) — once per (step, process)
    pair, so exploration never re-interprets the AST.  With a weak
    [register_model] the program is first two-phase-transformed, value
    ceilings are derived ({!Regsem.Domain}), and per-action static read
    sets are tabulated for the flicker enumerator; {!program} then
    returns the transformed program (commit steps visible, so traces
    show writes landing). *)

val layout : t -> State.layout
val program : t -> Mxlang.Ast.program

val source_program : t -> Mxlang.Ast.program
(** The program as handed to {!make}, before any two-phase transform —
    equal to {!program} under [Atomic].  The symmetry classifier
    ({!Reduce}) runs on this, because pid-(a)symmetry is a property of
    the source algorithm, not of the register encoding. *)

val two_phase_meta : t -> Regsem.Two_phase.meta option
(** The two-phase transform's bookkeeping (original step/local counts,
    pending-slot map) when a weak register model is in force; [None]
    under [Atomic]. *)

val nprocs : t -> int
val bound : t -> int

val register_model : t -> Regsem.Model.t
(** The model this system was built with ([Atomic] by default). *)

val initial : t -> State.packed

val successors : t -> State.packed -> move list
(** Every move of every process enabled in the given state, in
    deterministic (pid, alternative, flicker rank) order. *)

val successors_into : t -> State.packed -> move Vec.t -> unit
(** Append the same moves, in the same order, to a caller-owned buffer.
    The explorers clear and reuse one buffer per search, so the hot path
    allocates only the destination states themselves. *)

val iter_successors_scratch :
  ?only:int ->
  t ->
  State.packed ->
  scratch:State.packed ->
  (pid:int -> from_pc:int -> alt:int -> flick:int -> unit) ->
  unit
(** Allocation-free variant: each enabled move's destination is built in
    [scratch] (length {!State.layout}[.words]) and [f] is called while it
    is valid — the buffer is overwritten by the next move, so [f] must
    copy it to keep it.  Same deterministic order as {!successors}; lets
    the explorer dedup first and allocate only genuinely new states.
    (Weak models allocate one view buffer per call, atomic none.)
    [only] restricts expansion to that single process — the ample-set
    reduction; default [-1] expands all processes. *)

val successors_interpreted : t -> State.packed -> move list
(** The same moves computed by the AST interpreter ({!Mxlang.Eval})
    instead of the compiled closures — the differential-testing baseline
    and the "before" engine of the throughput experiment.  Honors the
    register model with the same move order as the compiled engine. *)

val apply_move :
  t -> State.packed -> pid:int -> pc:int -> alt:int -> flick:int -> State.packed
(** Re-execute one recorded move (no guard check): the destination of
    alternative [alt] of step [pc] fired by [pid] under flicker view
    [flick].  Used to replay a parent chain of (pid, pc, alt, flick)
    tuples into a concrete trace when the explorer kept only
    fingerprints. *)

val flick_assignment :
  t -> State.packed -> pid:int -> pc:int -> alt:int -> flick:int -> (int * int) list
(** The (flat shared cell, value seen) pairs in which view [flick] of
    this move differs from the true pre-state [s] — i.e. the reads that
    actually flickered.  Empty under [Atomic] and for rank 0. *)

val var_of_cell : t -> int -> int * int
(** Map a flat shared offset back to (variable id, cell index within
    the variable). *)

val successors_of_pid : t -> State.packed -> int -> move list
(** Moves of one process only (used by the starvation search, which
    freezes one process and lets the others run). *)

val enabled : t -> State.packed -> int -> bool
(** Does process [pid] have at least one enabled action?  Under a weak
    model, enabled under at least one flicker view. *)

val in_critical : t -> State.packed -> int -> bool
(** Is process [pid] at a [Critical]-kind step? *)

val kind_of_pc : t -> int -> Mxlang.Ast.kind
