(** The transition system induced by an mxlang program: interleaving of
    atomic labeled steps, exactly TLC's view of a PlusCal algorithm. *)

type t

type move = {
  pid : int;
  from_pc : int;
  alt : int;  (** which alternative action of the step fired *)
  dest : State.packed;
}

val make : Mxlang.Ast.program -> nprocs:int -> bound:int -> t
(** Validates the program (see {!Mxlang.Validate.assert_valid}),
    precomputes the state layout, and compiles every action's guard and
    effects to closures ({!Mxlang.Compile}) — once per (step, process)
    pair, so exploration never re-interprets the AST. *)

val layout : t -> State.layout
val program : t -> Mxlang.Ast.program
val nprocs : t -> int
val bound : t -> int

val initial : t -> State.packed

val successors : t -> State.packed -> move list
(** Every move of every process enabled in the given state, in
    deterministic (pid, alternative) order. *)

val successors_into : t -> State.packed -> move Vec.t -> unit
(** Append the same moves, in the same order, to a caller-owned buffer.
    The explorers clear and reuse one buffer per search, so the hot path
    allocates only the destination states themselves. *)

val iter_successors_scratch :
  t ->
  State.packed ->
  scratch:State.packed ->
  (pid:int -> from_pc:int -> alt:int -> unit) ->
  unit
(** Allocation-free variant: each enabled move's destination is built in
    [scratch] (length {!State.layout}[.words]) and [f] is called while it
    is valid — the buffer is overwritten by the next move, so [f] must
    copy it to keep it.  Same deterministic order as {!successors}; lets
    the explorer dedup first and allocate only genuinely new states. *)

val successors_interpreted : t -> State.packed -> move list
(** The same moves computed by the AST interpreter ({!Mxlang.Eval})
    instead of the compiled closures — the differential-testing baseline
    and the "before" engine of the throughput experiment. *)

val apply_move : t -> State.packed -> pid:int -> pc:int -> alt:int -> State.packed
(** Re-execute one recorded move (no guard check): the destination of
    alternative [alt] of step [pc] fired by [pid].  Used to replay a
    parent chain of (pid, pc, alt) triples into a concrete trace when
    the explorer kept only fingerprints. *)

val successors_of_pid : t -> State.packed -> int -> move list
(** Moves of one process only (used by the starvation search, which
    freezes one process and lets the others run). *)

val enabled : t -> State.packed -> int -> bool
(** Does process [pid] have at least one enabled action? *)

val in_critical : t -> State.packed -> int -> bool
(** Is process [pid] at a [Critical]-kind step? *)

val kind_of_pc : t -> int -> Mxlang.Ast.kind
