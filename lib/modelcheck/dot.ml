let escape s =
  String.concat "\\n" (String.split_on_char '\n' (String.concat "\\\"" (String.split_on_char '"' s)))

let state_label sys s =
  let lay = System.layout sys in
  let p = System.program sys in
  let pcs =
    String.concat ","
      (List.init (System.nprocs sys) (fun i ->
           p.steps.(State.pc lay s i).step_name))
  in
  let mem =
    String.concat " "
      (List.init p.nvars (fun v ->
           let cells = Mxlang.Ast.cells_of ~nprocs:(System.nprocs sys) p v in
           Printf.sprintf "%s=[%s]" p.var_names.(v)
             (String.concat ";"
                (List.init cells (fun c ->
                     string_of_int (State.shared_cell lay s v c))))))
  in
  pcs ^ "\n" ^ mem

let any_critical sys s =
  let rec go i =
    i < System.nprocs sys && (System.in_critical sys s i || go (i + 1))
  in
  go 0

let of_system ?(max_states = 500) ?constraint_ sys =
  let graph, _stats = Explore.run_graph ?constraint_ ~max_states sys in
  let buf = Buffer.create 4096 in
  let out fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  out "digraph %s {\n" (Mxlang.Tla.module_name (System.program sys));
  out "  rankdir=TB;\n  node [shape=box, fontsize=9];\n";
  let n = Vec.length graph.states in
  let truncated = ref false in
  Vec.iteri
    (fun id s ->
      out "  s%d [label=\"%s\"%s];\n" id
        (escape (state_label sys s))
        (if any_critical sys s then ", style=filled, fillcolor=lightcoral"
         else if id = 0 then ", style=filled, fillcolor=lightblue"
         else ""))
    graph.states;
  Vec.iteri
    (fun id s ->
      List.iter
        (fun (m : System.move) ->
          match graph.id_of m.dest with
          | Some dst ->
              out "  s%d -> s%d [label=\"p%d:%s\", fontsize=8];\n" id dst m.pid
                (System.program sys).steps.(m.from_pc).step_name
          | None -> truncated := true)
        (System.successors sys s))
    graph.states;
  if !truncated || n > max_states then begin
    out "  cut [label=\"...\", shape=plaintext];\n";
    out "  s0 -> cut [style=dashed, label=\"truncated at %d states\"];\n" n
  end;
  out "}\n";
  Buffer.contents buf

let of_trace ?violation sys (t : Trace.t) =
  let buf = Buffer.create 1024 in
  let out fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  out "digraph trace {\n  rankdir=TB;\n  node [shape=box, fontsize=9];\n";
  let last = List.length t - 1 in
  List.iteri
    (fun i (e : Trace.entry) ->
      let style =
        if i = last && violation <> None then
          ", style=filled, fillcolor=red, penwidth=2"
        else if any_critical sys e.state then
          ", style=filled, fillcolor=lightcoral"
        else ""
      in
      out "  t%d [label=\"%s\"%s];\n" i (escape (state_label sys e.state)) style)
    t;
  List.iteri
    (fun i (e : Trace.entry) ->
      if i > 0 then
        if i = last && violation <> None then
          let failed = match violation with Some f -> f | None -> "" in
          out
            "  t%d -> t%d [label=\"p%d:%s\\nviolates: %s\", fontsize=8, \
             color=red, penwidth=2];\n"
            (i - 1) i e.pid e.step_name (escape failed)
        else
          out "  t%d -> t%d [label=\"p%d:%s\", fontsize=8];\n" (i - 1) i e.pid
            e.step_name)
    t;
  out "}\n";
  Buffer.contents buf
