(* Pid-symmetry canonicalization and a conservative ample-set filter.
   See reduce.mli for the soundness argument; the short version:

   - Canonicalization only runs on programs that pass a static
     pid-symmetry certificate ([certify]).  The bakery id tie-break
     (Lex_lt over (ticket, pid)) fails it, by design: quotienting an
     asymmetric program can lose counterexamples.
   - The ample filter expands a single process exactly when every
     alternative of its current step reads no shared cell, writes no
     shared cell or pending slot, stays clear of Critical-kind steps,
     and strictly increases the pc (so ample-only paths cannot cycle:
     the pc sum strictly grows along every reduced-only edge). *)

type mode = Off | Sym | Sym_por

let mode_of_string = function
  | "none" -> Some Off
  | "sym" -> Some Sym
  | "sym+por" -> Some Sym_por
  | _ -> None

let mode_to_string = function
  | Off -> "none"
  | Sym -> "sym"
  | Sym_por -> "sym+por"

let mode_values = [ ("none", Off); ("sym", Sym); ("sym+por", Sym_por) ]

(* ------------------------------------------------------------------ *)
(* Static pid-symmetry certificate.                                    *)
(* ------------------------------------------------------------------ *)

exception Asym of string

(* Every expression is sorted as pid-valued or data-valued.  A program
   is certified symmetric when pids are never ordered, stored, mixed
   into arithmetic, or compared with data; per-process arrays are
   indexed only by the symmetric process designators Pid/Qidx (and only
   by Pid in effects, preserving the single-writer discipline the
   pending-slot rename relies on); quantifier ranges never order pids.
   Initial states are uniform across processes by construction
   (State.initial fills every block identically), so no separate check
   is needed there. *)
let certify (p : Mxlang.Ast.program) =
  let open Mxlang.Ast in
  let bad fmt = Printf.ksprintf (fun m -> raise (Asym m)) fmt in
  let vname v = p.var_names.(v) in
  let rec esort ~in_q (e : expr) =
    match e with
    | Int _ | N | M -> `Data
    | Pid | Qidx -> `Pid
    | Local _ -> `Data (* effects may only store data into locals *)
    | Rd (v, ix) ->
        index_ok ~in_q v ix;
        `Data
    | Add (a, b) | Sub (a, b) | Mul (a, b) | Mod (a, b) ->
        data ~in_q "arithmetic" a;
        data ~in_q "arithmetic" b;
        `Data
    | Max_arr _ -> `Data
    | Ite (c, a, b) ->
        bcheck ~in_q c;
        data ~in_q "a conditional branch" a;
        data ~in_q "a conditional branch" b;
        `Data
  and data ~in_q what e =
    match esort ~in_q e with
    | `Data -> ()
    | `Pid -> bad "a process id flows into %s" what
  and index_ok ~in_q v ix =
    if p.var_sizes.(v) = -1 then
      match ix with
      | Pid -> ()
      | Qidx when in_q -> ()
      | _ ->
          bad "per-process array %s indexed by a computed expression"
            (vname v)
    else data ~in_q (Printf.sprintf "an index into %s" (vname v)) ix
  and bcheck ~in_q (b : bexpr) =
    match b with
    | True | False -> ()
    | Not x -> bcheck ~in_q x
    | And (x, y) | Or (x, y) ->
        bcheck ~in_q x;
        bcheck ~in_q y
    | Cmp (c, x, y) -> (
        match (esort ~in_q x, esort ~in_q y) with
        | `Data, `Data -> ()
        | `Pid, `Pid -> (
            match c with
            | Ceq | Cne -> ()
            | _ -> bad "process ids are ordered (pid-order comparison)")
        | _ -> bad "a process id is compared with data")
    | Lex_lt ((a, b1), (c, d)) ->
        if List.exists (fun e -> esort ~in_q e = `Pid) [ a; b1; c; d ] then
          bad "id tie-break: Lex_lt orders process ids"
    | Qexists (r, q) | Qall (r, q) ->
        (match r with
        | Rall | Rothers -> ()
        | Rbelow | Rabove ->
            bad "pid-ordered quantifier range (below/above self)");
        bcheck ~in_q:true q
  in
  try
    Array.iter
      (fun (st : step) ->
        List.iter
          (fun (a : action) ->
            bcheck ~in_q:false a.guard;
            List.iter
              (fun (l, e) ->
                data ~in_q:false "a stored value" e;
                match l with
                | Lo _ -> ()
                | Sh (v, ix) -> index_ok ~in_q:false v ix)
              a.effects)
          st.actions)
      p.steps;
    Ok ()
  with Asym m -> Error m

(* ------------------------------------------------------------------ *)
(* Canonicalization.                                                   *)
(* ------------------------------------------------------------------ *)

(* Per-system geometry for the orbit-representative function: where the
   per-process array columns live, and which local slots are two-phase
   pending write indices into per-process arrays.  A live pending index
   on such an array equals the owning process's pid (certified programs
   write per-process arrays only at [Pid]), so it must be normalized out
   of the sort key and renamed to the block's new slot afterwards. *)
type sym = {
  s_lay : State.layout;
  s_pp : int array; (* flat offset of cell 0 of each per-process var *)
  s_pend : int array; (* block-relative pending-idx locals to rename *)
}

let make_sym sys =
  let lay = System.layout sys in
  let env = lay.State.env in
  let p = env.Mxlang.Eval.program in
  let pp = ref [] in
  for v = p.nvars - 1 downto 0 do
    if p.var_sizes.(v) = -1 then pp := env.Mxlang.Eval.offsets.(v) :: !pp
  done;
  let pend =
    match System.two_phase_meta sys with
    | None -> [||]
    | Some meta ->
        let acc = ref [] in
        Array.iteri
          (fun v slots ->
            if p.var_sizes.(v) = -1 then
              Array.iter (fun (il, _vl) -> acc := il :: !acc) slots)
          meta.Regsem.Two_phase.tp_pend;
        Array.of_list (List.sort compare !acc)
  in
  { s_lay = lay; s_pp = Array.of_list !pp; s_pend = pend }

let key_width sym = 1 + Array.length sym.s_pp + sym.s_lay.State.locals_per

(* Result block [j] := source block [perm.(j)]: pc, per-process array
   cells, locals — live pending indices renamed to the new slot. *)
let apply_perm sym ~perm (s : State.packed) (out : State.packed) =
  let lay = sym.s_lay in
  let n = lay.State.nprocs in
  let npp = Array.length sym.s_pp in
  let lp = lay.State.locals_per in
  Array.blit s 0 out 0 lay.State.shared_len;
  for j = 0 to n - 1 do
    let i = perm.(j) in
    out.(lay.State.pcs_off + j) <- s.(lay.State.pcs_off + i);
    for v = 0 to npp - 1 do
      out.(sym.s_pp.(v) + j) <- s.(sym.s_pp.(v) + i)
    done;
    let src = lay.State.locals_off + (i * lp)
    and dst = lay.State.locals_off + (j * lp) in
    for l = 0 to lp - 1 do
      out.(dst + l) <- s.(src + l)
    done;
    Array.iter
      (fun il -> if out.(dst + il) >= 0 then out.(dst + il) <- j)
      sym.s_pend
  done

(* Orbit representative: sort the per-process blocks by a signature that
   cannot see pids (pc, per-process cells, pid-normalized locals).  The
   insertion sort is stable and over at most a dozen blocks, so the
   representative — and the slot map [perm] — is deterministic. *)
let canon_into sym ~keys ~ord ~out ~perm (s : State.packed) =
  let lay = sym.s_lay in
  let n = lay.State.nprocs in
  let npp = Array.length sym.s_pp in
  let lp = lay.State.locals_per in
  for i = 0 to n - 1 do
    let k = keys.(i) in
    k.(0) <- s.(lay.State.pcs_off + i);
    for v = 0 to npp - 1 do
      k.(1 + v) <- s.(sym.s_pp.(v) + i)
    done;
    let base = lay.State.locals_off + (i * lp) in
    for l = 0 to lp - 1 do
      k.(1 + npp + l) <- s.(base + l)
    done;
    Array.iter
      (fun il -> if k.(1 + npp + il) >= 0 then k.(1 + npp + il) <- 0)
      sym.s_pend;
    ord.(i) <- i
  done;
  let lt a b =
    let ka = keys.(a) and kb = keys.(b) in
    let len = Array.length ka in
    let rec go j =
      j < len && (ka.(j) < kb.(j) || (ka.(j) = kb.(j) && go (j + 1)))
    in
    go 0
  in
  for i = 1 to n - 1 do
    let x = ord.(i) in
    let j = ref (i - 1) in
    while !j >= 0 && lt x ord.(!j) do
      ord.(!j + 1) <- ord.(!j);
      decr j
    done;
    ord.(!j + 1) <- x
  done;
  Array.blit ord 0 perm 0 n;
  apply_perm sym ~perm s out

(* ------------------------------------------------------------------ *)
(* Ample-set tables.                                                   *)
(* ------------------------------------------------------------------ *)

(* amp.(pc).(pid): may pid alone be expanded when it stands at pc?
   Static per (pc, pid) because read sets are pid-dependent.  Under a
   weak model, writes to pending slots (locals >= tp_orig_locals) feed
   other processes' flicker views, so they disqualify too. *)
let make_amp sys =
  let lay = System.layout sys in
  let env = lay.State.env in
  let p = env.Mxlang.Eval.program in
  let n = lay.State.nprocs in
  let orig_locals =
    match System.two_phase_meta sys with
    | None -> p.Mxlang.Ast.nlocals
    | Some m -> m.Regsem.Two_phase.tp_orig_locals
  in
  Array.mapi
    (fun pc (step : Mxlang.Ast.step) ->
      Array.init n (fun pid ->
          step.actions <> []
          && step.kind <> Mxlang.Ast.Critical
          && List.for_all
               (fun (a : Mxlang.Ast.action) ->
                 a.target > pc
                 && p.steps.(a.target).kind <> Mxlang.Ast.Critical
                 && Array.length (Mxlang.Reads.static_cells env ~pid a) = 0
                 && List.for_all
                      (fun (l, _) ->
                        match l with
                        | Mxlang.Ast.Sh _ -> false
                        | Mxlang.Ast.Lo l -> l < orig_locals)
                      a.effects)
               step.actions))
    p.Mxlang.Ast.steps

(* ------------------------------------------------------------------ *)
(* The reduction context.                                              *)
(* ------------------------------------------------------------------ *)

type t = {
  rmode : mode;
  reason : string option; (* why canonicalization is off under Sym* *)
  active : bool; (* mode wants symmetry and the program certified *)
  sym : sym;
  amp : bool array array option; (* Some iff rmode = Sym_por *)
  sys : System.t;
}

let make rmode sys =
  let reason =
    match rmode with
    | Off -> None
    | Sym | Sym_por -> (
        match certify (System.source_program sys) with
        | Ok () -> None
        | Error r -> Some r)
  in
  let active = rmode <> Off && reason = None in
  {
    rmode;
    reason;
    active;
    sym = make_sym sys;
    amp = (if rmode = Sym_por then Some (make_amp sys) else None);
    sys;
  }

let mode t = t.rmode
let symmetry_active t = t.active
let asymmetry_reason t = t.reason

let describe t =
  match t.rmode with
  | Off -> "none"
  | m ->
      let por = if m = Sym_por then "; ample-set POR on" else "" in
      let sym_part =
        match t.reason with
        | None -> "pid-symmetry certified, canonicalizing"
        | Some r -> Printf.sprintf "canonicalization off — %s" r
      in
      Printf.sprintf "%s: %s%s" (mode_to_string m) sym_part por

let canonizer t =
  if not t.active then fun _ -> ()
  else
    let sym = t.sym in
    let lay = sym.s_lay in
    let n = lay.State.nprocs in
    let w = key_width sym in
    let keys = Array.init n (fun _ -> Array.make w 0) in
    let ord = Array.make n 0 in
    let perm = Array.make n 0 in
    let out = Array.make lay.State.words 0 in
    fun s ->
      canon_into sym ~keys ~ord ~out ~perm s;
      Array.blit out 0 s 0 lay.State.words

let canon t s =
  let n = t.sym.s_lay.State.nprocs in
  if not t.active then (Array.copy s, Array.init n (fun i -> i))
  else begin
    let sym = t.sym in
    let w = key_width sym in
    let keys = Array.init n (fun _ -> Array.make w 0) in
    let ord = Array.make n 0 in
    let perm = Array.make n 0 in
    let out = Array.make sym.s_lay.State.words 0 in
    canon_into sym ~keys ~ord ~out ~perm s;
    (out, perm)
  end

let permute t ~perm s =
  let out = Array.make t.sym.s_lay.State.words 0 in
  apply_perm t.sym ~perm s out;
  out

let invert p =
  let inv = Array.make (Array.length p) 0 in
  Array.iteri (fun j i -> inv.(i) <- j) p;
  inv

let invariants_reducible invs =
  let ok (c : Invariant.t) =
    c.Invariant.name = "mutual-exclusion"
    || c.Invariant.name = "no-overflow"
    || String.starts_with ~prefix:"bounded(" c.Invariant.name
  in
  List.for_all (fun i -> List.for_all ok (Invariant.conjuncts i)) invs

let ample t s =
  match t.amp with
  | None -> -1
  | Some amp ->
      let lay = t.sym.s_lay in
      let n = lay.State.nprocs in
      let rec go pid =
        if pid >= n then -1
        else
          let pc = s.(lay.State.pcs_off + pid) in
          if amp.(pc).(pid) && System.enabled t.sys s pid then pid
          else go (pid + 1)
      in
      go 0

(* ------------------------------------------------------------------ *)
(* Counterexample coordinates.                                         *)
(* ------------------------------------------------------------------ *)

(* Forward replay: walk the canonical trace alongside a genuine run,
   maintaining ren : canonical slot -> real pid.  At each canonical edge
   (slot p, step, canonical dest) the real move is whichever move of
   process ren.(p) canonicalizes to that dest (equivariance guarantees
   one exists); the next renaming is exactly the slot map its dest
   canonicalizes with. *)
let decanonicalize t (tr : Trace.t) =
  if not t.active then tr
  else
    match tr with
    | [] -> []
    | first :: rest ->
        let sys = t.sys in
        let steps = (System.program sys).Mxlang.Ast.steps in
        let cur = ref (System.initial sys) in
        let ren = ref (Array.init (System.nprocs sys) (fun i -> i)) in
        let out = ref [ { first with Trace.state = !cur } ] in
        List.iter
          (fun (e : Trace.entry) ->
            let real = !ren.(e.Trace.pid) in
            let moves = System.successors_of_pid sys !cur real in
            let matches (m : System.move) =
              steps.(m.System.from_pc).Mxlang.Ast.step_name
              = e.Trace.step_name
              && State.equal (fst (canon t m.System.dest)) e.Trace.state
            in
            match List.find_opt matches moves with
            | None ->
                invalid_arg
                  "Reduce.decanonicalize: canonical trace does not replay \
                   (quotient search reached a state the full system cannot)"
            | Some m ->
                let _, perm = canon t m.System.dest in
                ren := perm;
                cur := m.System.dest;
                out :=
                  {
                    Trace.pid = real;
                    step_name = e.Trace.step_name;
                    state = m.System.dest;
                  }
                  :: !out)
          rest;
        List.rev !out
