(** Graphviz (DOT) export of reachable state graphs — for inspecting
    small instances and for documentation figures.

    Nodes are labeled with program counters and shared memory; critical
    states are highlighted; edges carry "p<i>: <label>".  A cap keeps the
    output usable (state graphs explode quickly). *)

val of_system :
  ?max_states:int ->
  ?constraint_:(System.t -> State.packed -> bool) ->
  System.t ->
  string
(** Explore (BFS, capped at [max_states], default 500) and render.
    If the cap truncates the graph, a dashed "…" node marks the cut. *)

val of_trace : ?violation:string -> System.t -> Trace.t -> string
(** Render a single trace as a path graph (e.g. a counterexample).
    [?violation], when given, is the failed invariant conjunct: the
    final state is drawn red and the last edge is labeled with it. *)
