(* The checker's state store: packed states in insertion order in a
   chunked int arena, plus an open-addressing index from contents to id.

   Replaces the generic [Hashtbl.Make] table and the
   one-boxed-array-per-state storage on the hot path:

   - probing allocates nothing (no key records, no [Some], no bucket
     cells) and touches one word per step: each index entry packs a
     31-bit hash tag with the state id;
   - each stored state's full hash is kept in an id-indexed side vector,
     so table growth re-places entries without rehashing any state;
   - states live contiguously inside fixed-size arena chunks: storing
     one is a blit, not an allocation, equality on a probe hit reads
     sequential words, and the GC never traces millions of small
     arrays.  Chunks are never moved or copied once allocated — growing
     the store allocates a fresh chunk instead of re-blitting a doubled
     arena, so insertion cost stays flat into the millions of states.

   Single-writer by design: probes are safe from any thread, but only
   one thread may insert. *)

type t = {
  mutable table : int array;
      (* slot -> 0 when empty, else (hash high bits lsl 32) lor (id + 1) *)
  mutable mask : int;
  hashes : int Vec.t;  (* id -> full hash, for growth *)
  mutable chunks : int array array;
      (* state [id] at [(id land chunk_mask) * words] in
         [chunks.(id lsr chunk_bits)] *)
  mutable words : int;  (* per-state size; fixed by the first [add_probed] *)
  mutable count : int;
  mutable last_slot : int;
  mutable last_hash : int;
}

let initial_slots = 4096
let chunk_bits = 13
let chunk_states = 1 lsl chunk_bits
let chunk_mask = chunk_states - 1
let tag_of h = (h lsr 32) lsl 32
let id_of_entry e = (e land 0xffff_ffff) - 1

let create () =
  {
    table = Array.make initial_slots 0;
    mask = initial_slots - 1;
    hashes = Vec.create ();
    chunks = [||];
    words = -1;
    count = 0;
    last_slot = 0;
    last_hash = 0;
  }

let length t = t.count

let read_into t id (dst : State.packed) =
  Array.blit t.chunks.(id lsr chunk_bits) ((id land chunk_mask) * t.words) dst
    0 t.words

let get t id =
  Array.sub t.chunks.(id lsr chunk_bits) ((id land chunk_mask) * t.words) t.words

(* [State.equal] on the arena-resident state, without materializing it.
   Indices are in range by construction (id < count, length s = words
   checked first), so the scan uses unsafe reads. *)
let equal_at t id (s : State.packed) =
  let words = t.words in
  Array.length s = words
  &&
  let chunk = Array.unsafe_get t.chunks (id lsr chunk_bits) in
  let base = (id land chunk_mask) * words in
  let rec loop i =
    i >= words
    || Array.unsafe_get chunk (base + i) = Array.unsafe_get s i && loop (i + 1)
  in
  loop 0

let probe t (s : State.packed) =
  let h = State.hash s in
  let table = t.table and mask = t.mask in
  let tag = tag_of h in
  let i = ref (h land mask) in
  let found = ref (-1) in
  let scanning = ref true in
  while !scanning do
    let e = Array.unsafe_get table !i in
    if e = 0 then scanning := false
    else if
      tag_of e = tag
      &&
      let id = id_of_entry e in
      equal_at t id s
    then begin
      found := id_of_entry e;
      scanning := false
    end
    else i := (!i + 1) land mask
  done;
  t.last_slot <- !i;
  t.last_hash <- h;
  !found

let find_opt t s = match probe t s with -1 -> None | id -> Some id

let grow_table t =
  let old = t.table in
  (* Large tables quadruple instead of doubling: re-placing an entry is
     a random write, so halving the number of growth rounds matters more
     than the transiently lower load factor. *)
  let n = (if Array.length old >= 1 lsl 18 then 4 else 2) * Array.length old in
  let table = Array.make n 0 in
  let mask = n - 1 in
  for k = 0 to Array.length old - 1 do
    let e = Array.unsafe_get old k in
    if e <> 0 then begin
      let h = Vec.get t.hashes (id_of_entry e) in
      let i = ref (h land mask) in
      while Array.unsafe_get table !i <> 0 do
        i := (!i + 1) land mask
      done;
      Array.unsafe_set table !i e
    end
  done;
  t.table <- table;
  t.mask <- mask

let add_probed t (s : State.packed) =
  if t.words < 0 then t.words <- Array.length s;
  let words = t.words in
  let id = t.count in
  let cid = id lsr chunk_bits in
  if cid >= Array.length t.chunks then begin
    let n = Array.length t.chunks in
    let chunks = Array.make (max 8 (2 * n)) [||] in
    Array.blit t.chunks 0 chunks 0 n;
    t.chunks <- chunks
  end;
  if Array.length t.chunks.(cid) = 0 then
    t.chunks.(cid) <- Array.make (chunk_states * words) 0;
  Array.blit s 0 t.chunks.(cid) ((id land chunk_mask) * words) words;
  t.count <- id + 1;
  ignore (Vec.push t.hashes t.last_hash);
  t.table.(t.last_slot) <- tag_of t.last_hash lor (id + 1);
  (* Keep the load factor at or below 2/3: linear probing's sequential
     cache lines tolerate it well, and the smaller table keeps more of
     the index in cache than a half-full one twice the size. *)
  if 3 * (id + 1) > 2 * (t.mask + 1) then grow_table t;
  id

let add t s =
  match probe t s with
  | -1 -> Some (add_probed t s)
  | _ -> None

let load_factor t =
  if t.count = 0 then 0.0
  else float_of_int t.count /. float_of_int (t.mask + 1)

let word_bytes = Sys.word_size / 8

let arena_bytes t =
  let chunk_words =
    Array.fold_left (fun acc c -> acc + Array.length c) 0 t.chunks
  in
  (chunk_words + t.mask + 1 + Vec.length t.hashes) * word_bytes
