(** 63-bit state fingerprints (splitmix-style mixing over the packed
    representation) for the sharded parallel explorer.

    Unlike {!State.hash} (FNV-1a, only ever used with the full state
    available for tie-breaking), these fingerprints also select the
    owning shard ({!Shard_table.owner}) and the in-shard table slot, so
    the mixing must avalanche across the whole word. *)

val hash : State.packed -> int
(** Fingerprint of a packed state: uniform over [0, max_int]. *)

val mix : int -> int
(** The splitmix64 finalizer, exposed for tests and derived hashes. *)
