(* 63-bit state fingerprints for the sharded explorer.

   [State.hash] is FNV-1a tuned for the sequential store, where the
   full state is always at hand to break ties.  The sharded engine
   additionally uses the fingerprint to pick the owning shard (low
   bits) and the table slot (also low bits after masking), so the
   finalizer must avalanche: a single flipped word anywhere in the
   packed state must flip every output bit with probability ~1/2.
   This is splitmix64's mix function over an FNV-style accumulation,
   the same construction TLC uses for its fingerprint set (minus the
   128-bit width: OCaml ints give us 63 bits, and the collision
   budget at 10^8 states is still ~3e-3 for the whole run). *)

(* The 64-bit splitmix constants don't fit an OCaml int literal (63
   bits); assembling them from halves keeps their low 63 bits, which is
   all the wrapping multiplication ever sees. *)
let c1 = (0xbf58476d lsl 32) lor 0x1ce4e5b9
let c2 = (0x94d049bb lsl 32) lor 0x133111eb
let seed = (0x9e3779b9 lsl 32) lor 0x7f4a7c15

let mix z =
  let z = (z lxor (z lsr 30)) * c1 in
  let z = (z lxor (z lsr 27)) * c2 in
  z lxor (z lsr 31)

let hash (s : State.packed) =
  let h = ref seed in
  for i = 0 to Array.length s - 1 do
    h := mix (!h lxor Array.unsafe_get s i) + (!h lsl 6) + (!h lsr 2)
  done;
  mix !h land max_int
