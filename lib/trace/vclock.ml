(* Vector clocks over process ids 0 .. nprocs-1.

   Clocks are plain int arrays; the causal annotator owns one mutable
   clock per process and stamps events with copies, so comparison
   functions here never mutate. *)

let leq a b =
  let n = Array.length a in
  n = Array.length b
  &&
  let rec go i = i >= n || (a.(i) <= b.(i) && go (i + 1)) in
  go 0

(* Strict happens-before: componentwise <= and different somewhere. *)
let lt a b = leq a b && not (leq b a)

let concurrent a b = (not (lt a b)) && not (lt b a)

let join_into ~into src =
  for i = 0 to Array.length into - 1 do
    if src.(i) > into.(i) then into.(i) <- src.(i)
  done

let to_string v =
  "["
  ^ String.concat "," (Array.to_list (Array.map string_of_int v))
  ^ "]"
