(* The unified structured event model.

   Every execution engine — the schedsim runner, the model checker's
   counterexample re-walker, the runtime lock zoo — renders its run as
   one flat array of these events, causally annotated with per-process
   vector clocks ({!Causal}).  Everything downstream (the explainer,
   the Chrome/Perfetto exporter, the JSONL codec, derived queries) is
   engine-agnostic: registers are named by strings, labels carry their
   step kinds as strings, and the engine-specific conversion lives in
   [Of_sim]/[Of_walk]/[Of_locks]. *)

type kind =
  | Label of {
      from_label : string;
      to_label : string;
      from_kind : string;
      to_kind : string;  (* step kinds as strings: "doorway", "critical", … *)
    }
  | Read of { var : string; cell : int; value : int }
  | Write of {
      var : string;
      cell : int;
      value : int;  (* value actually stored *)
      prev : int;  (* cell content before the store *)
      raw : int;  (* pre-wrap value; raw <> value means the store wrapped *)
    }
  | Acquire of { lock : string }
  | Release of { lock : string }
  | Wait of { what : string }  (* start of a blocking wait (L1, lock) *)
  | Reset of { what : string }  (* crash, restart *)
  | Anomaly of { what : string; cell : int; value : int }
      (* flickered safe-register read, register overflow *)
  | Violation of { property : string; law : string; detail : string }

type t = {
  seq : int;  (* global emission index, 0-based, strictly increasing *)
  step : int;  (* engine step counter (sim time / trace index / rel. ns) *)
  pid : int;  (* owning process; -1 for global events *)
  kind : kind;
  observed : int;
      (* [seq] of the write (for reads) or release (for acquires) this
         event causally observed; -1 when none *)
  vc : int array;  (* vector clock after this event, length nprocs *)
}

type trace = {
  source : string;  (* "sim" | "modelcheck" | "locks" *)
  model : string;
  nprocs : int;
  bound : int;  (* the paper's M; 0 when not meaningful (locks) *)
  meta : (string * string) list;  (* e.g. init_label, init_kind, outcome *)
  events : t array;
}

let string_of_step_kind = function
  | Mxlang.Ast.Noncritical -> "noncritical"
  | Entry -> "entry"
  | Doorway -> "doorway"
  | Waiting -> "waiting"
  | Critical -> "critical"
  | Exit -> "exit"
  | Plain -> "plain"

let meta_find trace key =
  List.assoc_opt key trace.meta

let kind_tag = function
  | Label _ -> "label"
  | Read _ -> "read"
  | Write _ -> "write"
  | Acquire _ -> "acquire"
  | Release _ -> "release"
  | Wait _ -> "wait"
  | Reset _ -> "reset"
  | Anomaly _ -> "anomaly"
  | Violation _ -> "violation"
