(** Self-describing JSONL codec for causal traces.

    Line 1 is a header carrying the trace schema version
    ({!Telemetry.Runmeta.trace_schema_version}), the captured
    {!Telemetry.Runmeta} fields, and the trace identity; every further
    line is one event.  {!read} validates the schema first and refuses
    incompatible files with a clear error. *)

val write : path:string -> Event.trace -> unit

val read : path:string -> (Event.trace, string) result

val header_line : Event.trace -> Telemetry.Json.t
val event_line : Event.t -> Telemetry.Json.t
