(** Render a causal trace as an annotated step-by-step story.

    The output is a pure function of the trace — no wall clocks, no
    file paths — so the same counterexample always explains
    identically.  For violating traces the story ends with the failed
    invariant reduced to its specific conjunct and the register values
    falsifying it, plus the causal chain from the violator's fatal read
    back to the (possibly wrapped) write it observed. *)

val render : ?max_steps:int -> Event.trace -> string
(** [max_steps] caps the number of step blocks shown, keeping the most
    recent ones (the violation neighbourhood); [0] (default) shows
    everything. *)
