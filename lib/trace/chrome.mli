(** Chrome trace-event JSON export — loadable in Perfetto
    ([ui.perfetto.dev]) and chrome://tracing.

    One Chrome process per trace, one thread (track) per simulated
    process named "p<i>", complete label-occupancy spans covering the
    whole run, wait/hold spans for lock traces, and instant events for
    resets, anomalies and violations.  Timestamps are event sequence
    numbers in microseconds: deterministic and strictly monotone per
    track; the engine step is in each event's [args]. *)

val of_trace : Event.trace -> Telemetry.Json.t
val to_string : Event.trace -> string
val write : path:string -> Event.trace -> unit
