(** Modelcheck re-walk -> unified causal trace.

    The step counter is the 1-based counterexample index.  The checker
    never wraps stores, so every Write has [raw = value]; wrap
    corruption shows up as a stored value exceeding M, which the
    no-overflow conjunct names. *)

val trace :
  ?model:string ->
  ?violation:Modelcheck.Invariant.failure ->
  Modelcheck.Rewalk.t ->
  Event.trace
(** [?violation] (from {!Modelcheck.Invariant.explain_failure} on the
    final state) is appended as a [Violation] event attributed to the
    process that fired the last step. *)
