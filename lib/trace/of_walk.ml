(* Modelcheck re-walk -> unified causal trace.

   The step counter is the 1-based trace index ("State k" in the TLC
   rendering is step k-1 here).  The checker never wraps stores, so
   every Write has [raw = value]; wrap corruption shows up instead as a
   stored value exceeding M, which the no-overflow conjunct names. *)

let trace ?model ?violation (w : Modelcheck.Rewalk.t) =
  let sys = w.rw_sys in
  let program = Modelcheck.System.program sys in
  let nprocs = Modelcheck.System.nprocs sys in
  let bound = Modelcheck.System.bound sys in
  let lay = Modelcheck.System.layout sys in
  let model = match model with Some m -> m | None -> program.title in
  let label pc = program.steps.(pc).Mxlang.Ast.step_name in
  let kind pc = Event.string_of_step_kind program.steps.(pc).Mxlang.Ast.kind in
  let init_pc = Modelcheck.State.pc lay w.rw_init 0 in
  let b =
    Causal.create ~source:"modelcheck" ~model ~nprocs ~bound
      ~meta:
        [ ("init_label", label init_pc); ("init_kind", kind init_pc) ]
      ()
  in
  let last = ref (-1, 0) in
  List.iteri
    (fun i (s : Modelcheck.Rewalk.step) ->
      let step = i + 1 in
      last := (s.rw_pid, step);
      (* Flickered reads first: an anomaly names the perturbed register
         before the Read events report the values the step computed
         with, so the story reads "the read flickered, then...". *)
      List.iter
        (fun (fl : Modelcheck.Rewalk.flick) ->
          Causal.push b ~step ~pid:s.rw_pid
            (Event.Anomaly
               {
                 what =
                   Printf.sprintf "flickered read of %s[%d] (register held %d)"
                     program.var_names.(fl.fl_var) fl.fl_cell fl.fl_actual;
                 cell = fl.fl_cell;
                 value = fl.fl_seen;
               }))
        s.rw_flicks;
      List.iter
        (fun (r : Mxlang.Reads.read) ->
          Causal.push b ~step ~pid:s.rw_pid
            (Event.Read
               {
                 var = program.var_names.(r.rd_var);
                 cell = r.rd_cell;
                 value = r.rd_value;
               }))
        s.rw_reads;
      List.iter
        (fun (wr : Modelcheck.Rewalk.write) ->
          Causal.push b ~step ~pid:s.rw_pid
            (Event.Write
               {
                 var = program.var_names.(wr.wr_var);
                 cell = wr.wr_cell;
                 value = wr.wr_value;
                 prev = wr.wr_prev;
                 raw = wr.wr_value;
               }))
        s.rw_writes;
      Causal.push b ~step ~pid:s.rw_pid
        (Event.Label
           {
             from_label = label s.rw_from_pc;
             to_label = label s.rw_to_pc;
             from_kind = kind s.rw_from_pc;
             to_kind = kind s.rw_to_pc;
           }))
    w.rw_steps;
  (match violation with
  | None -> ()
  | Some (f : Modelcheck.Invariant.failure) ->
      let pid, step = !last in
      Causal.push b ~step ~pid
        (Event.Violation
           {
             property = f.f_name;
             law = f.f_law;
             detail = (match f.f_detail with Some d -> d | None -> f.f_law);
           }));
  Causal.finish b
