(** Vector clocks over process ids [0 .. nprocs-1]. *)

val leq : int array -> int array -> bool
(** Componentwise [<=] (false on length mismatch). *)

val lt : int array -> int array -> bool
(** Strict happens-before: [leq a b] and [a <> b] somewhere. *)

val concurrent : int array -> int array -> bool
(** Neither [lt a b] nor [lt b a]. *)

val join_into : into:int array -> int array -> unit
(** [into.(i) <- max into.(i) src.(i)] for all [i]. *)

val to_string : int array -> string
(** ["[1,2,3]"]. *)
