(* Chrome trace-event JSON export (Perfetto / chrome://tracing loadable).

   One Chrome process (pid 1) per trace; one thread (track) per
   simulated process, named "p<i>".  Timestamps are the event sequence
   numbers in microseconds — deterministic, strictly monotone, and
   order-faithful (engine step counters can tie within a step; real
   wall clocks would make golden tests impossible).  The engine step is
   kept in every event's args.

   Tracks carry complete ("X") label-occupancy spans covering the whole
   run, plus wait/hold spans for lock traces; resets, anomalies and
   violations are instant ("i") events; register reads/writes are
   thread-scoped instants in category "mem". *)

module J = Telemetry.Json

let num i = J.Num (float_of_int i)

let base_args (e : Event.t) extra =
  ("step", num e.step)
  :: ("vc", J.Str (Vclock.to_string e.vc))
  :: (if e.observed >= 0 then [ ("observed_seq", num e.observed) ] else [])
  @ extra

let complete ~name ~cat ~tid ~ts ~dur args =
  J.Obj
    [
      ("name", J.Str name);
      ("cat", J.Str cat);
      ("ph", J.Str "X");
      ("pid", num 1);
      ("tid", num tid);
      ("ts", num ts);
      ("dur", num dur);
      ("args", J.Obj args);
    ]

let instant ~name ~cat ~scope ~tid ~ts args =
  J.Obj
    [
      ("name", J.Str name);
      ("cat", J.Str cat);
      ("ph", J.Str "i");
      ("s", J.Str scope);
      ("pid", num 1);
      ("tid", num tid);
      ("ts", num ts);
      ("args", J.Obj args);
    ]

let metadata ~name ~tid args =
  J.Obj
    ([ ("name", J.Str name); ("ph", J.Str "M"); ("pid", num 1) ]
    @ (match tid with Some t -> [ ("tid", num t) ] | None -> [])
    @ [ ("args", J.Obj args) ])

let of_trace (t : Event.trace) =
  let out = ref [] in
  let push j = out := j :: !out in
  push
    (metadata ~name:"process_name" ~tid:None
       [ ("name", J.Str (t.model ^ " (" ^ t.source ^ ")")) ]);
  let global_tid = t.nprocs in
  for p = 0 to t.nprocs - 1 do
    push
      (metadata ~name:"thread_name" ~tid:(Some p)
         [ ("name", J.Str ("p" ^ string_of_int p)) ])
  done;
  let total = Array.length t.events in
  let init_label = Event.meta_find t "init_label" in
  (* Label-occupancy spans: (label, opened-at) per pid, seeded with the
     initial label so every process owns a complete track even if it
     never moves. *)
  let current =
    Array.make t.nprocs
      (match init_label with Some l -> Some (l, 0) | None -> None)
  in
  let close_span p ~at ~reopen =
    (match current.(p) with
    | Some (lab, since) when at >= since ->
        push
          (complete ~name:lab ~cat:"label" ~tid:p ~ts:since ~dur:(at - since)
             [])
    | _ -> ());
    current.(p) <- reopen
  in
  (* Lock wait/hold spans. *)
  let waiting = Array.make t.nprocs None in
  let holding = Array.make t.nprocs None in
  Array.iter
    (fun (e : Event.t) ->
      let ts = e.seq in
      let tid = if e.pid < 0 then global_tid else e.pid in
      match e.kind with
      | Event.Label { to_label; _ } ->
          close_span e.pid ~at:ts ~reopen:(Some (to_label, ts))
      | Event.Reset { what } ->
          (if what = "crash" then
             match init_label with
             | Some l -> close_span e.pid ~at:ts ~reopen:(Some (l, ts))
             | None -> ());
          push (instant ~name:what ~cat:"reset" ~scope:"t" ~tid ~ts (base_args e []))
      | Event.Anomaly { what; cell; value } ->
          push
            (instant ~name:what ~cat:"anomaly" ~scope:"t" ~tid ~ts
               (base_args e [ ("cell", num cell); ("value", num value) ]))
      | Event.Violation { property; law; detail } ->
          push
            (instant ~name:("VIOLATION: " ^ property) ~cat:"violation"
               ~scope:"g" ~tid ~ts
               (base_args e [ ("law", J.Str law); ("detail", J.Str detail) ]))
      | Event.Read { var; cell; value } ->
          push
            (instant
               ~name:(Printf.sprintf "R %s[%d]" var cell)
               ~cat:"mem" ~scope:"t" ~tid ~ts
               (base_args e [ ("value", num value) ]))
      | Event.Write { var; cell; value; prev; raw } ->
          push
            (instant
               ~name:(Printf.sprintf "W %s[%d]" var cell)
               ~cat:"mem" ~scope:"t" ~tid ~ts
               (base_args e
                  (("value", num value) :: ("prev", num prev)
                  :: (if raw <> value then [ ("raw", num raw) ] else []))))
      | Event.Wait { what } -> waiting.(e.pid) <- Some (what, ts)
      | Event.Acquire { lock } ->
          (match waiting.(e.pid) with
          | Some (what, since) ->
              push
                (complete ~name:what ~cat:"lock" ~tid ~ts:since
                   ~dur:(ts - since) []);
              waiting.(e.pid) <- None
          | None -> ());
          holding.(e.pid) <- Some (lock, ts)
      | Event.Release { lock } -> (
          match holding.(e.pid) with
          | Some (_, since) ->
              push
                (complete ~name:("hold " ^ lock) ~cat:"lock" ~tid ~ts:since
                   ~dur:(ts - since) (base_args e []));
              holding.(e.pid) <- None
          | None ->
              push
                (instant ~name:("release " ^ lock) ~cat:"lock" ~scope:"t" ~tid
                   ~ts (base_args e []))))
    t.events;
  (* Close every still-open span at end of run. *)
  for p = 0 to t.nprocs - 1 do
    close_span p ~at:(max total 1) ~reopen:None;
    (match waiting.(p) with
    | Some (what, since) ->
        push (complete ~name:what ~cat:"lock" ~tid:p ~ts:since ~dur:(total - since) [])
    | None -> ());
    match holding.(p) with
    | Some (lock, since) ->
        push
          (complete ~name:("hold " ^ lock) ~cat:"lock" ~tid:p ~ts:since
             ~dur:(total - since) [])
    | None -> ()
  done;
  J.Obj
    [
      ("traceEvents", J.Arr (List.rev !out));
      ("displayTimeUnit", J.Str "ms");
    ]

let to_string t = J.to_string (of_trace t)

let write ~path t =
  let oc = open_out path in
  output_string oc (to_string t);
  output_char oc '\n';
  close_out oc
