(* Schedsim events -> unified causal trace.

   Requires a run recorded with [record_events = true]; register-level
   Read/Write events flow only when [record_rw] was also set, and
   without them the trace still carries label transitions, resets and
   violations (enough for Chrome export and the FCFS query, not for
   reads-from analysis). *)

module SE = Schedsim.Event

let outcome_tag : Schedsim.Runner.outcome -> string = function
  | Completed -> "completed"
  | Steps_exhausted -> "steps_exhausted"
  | Overflow_stop -> "overflow_stop"
  | Stuck -> "stuck"

let trace ?model (program : Mxlang.Ast.program) ~nprocs ~bound
    (r : Schedsim.Runner.result) =
  let model = match model with Some m -> m | None -> program.title in
  let env = Mxlang.Eval.make_env program ~nprocs ~bound in
  let label pc = program.steps.(pc).Mxlang.Ast.step_name in
  let kind pc = Event.string_of_step_kind program.steps.(pc).Mxlang.Ast.kind in
  let init_pc = program.init_pc in
  let b =
    Causal.create ~source:"sim" ~model ~nprocs ~bound
      ~meta:
        [
          ("init_label", label init_pc);
          ("init_kind", kind init_pc);
          ("outcome", outcome_tag r.outcome);
          ("steps", string_of_int r.steps);
        ]
      ()
  in
  (* Resolve a flat shared-cell index back to var[cell] (flicker events
     record the global index). *)
  let var_of_global_cell cell =
    let rec go v =
      if v >= program.nvars then None
      else
        let o = Mxlang.Eval.offset env v in
        let n = Mxlang.Ast.cells_of ~nprocs program v in
        if cell >= o && cell < o + n then Some (v, cell - o) else go (v + 1)
    in
    go 0
  in
  let pcs = Array.make nprocs init_pc in
  let last_stepped = ref (-1) in
  List.iter
    (fun (e : SE.t) ->
      match e with
      | SE.Step { time; pid; pc; target } ->
          last_stepped := pid;
          Causal.push b ~step:time ~pid
            (Event.Label
               {
                 from_label = label pc;
                 to_label = label target;
                 from_kind = kind pc;
                 to_kind = kind target;
               });
          pcs.(pid) <- target
      | SE.Read { time; pid; var; cell; value } ->
          Causal.push b ~step:time ~pid
            (Event.Read { var = program.var_names.(var); cell; value })
      | SE.Write { time; pid; var; cell; value; prev; raw } ->
          Causal.push b ~step:time ~pid
            (Event.Write
               { var = program.var_names.(var); cell; value; prev; raw })
      | SE.Overflow { time; pid; var; cell; value } ->
          Causal.push b ~step:time ~pid
            (Event.Anomaly
               {
                 what =
                   Printf.sprintf "overflow of %s[%d]" program.var_names.(var)
                     cell;
                 cell;
                 value;
               })
      | SE.Mutex_violation { time; pids } ->
          let culprit =
            (* the process whose entry triggered the violation: the last
               one that stepped *)
            if List.mem !last_stepped pids then !last_stepped
            else match pids with p :: _ -> p | [] -> -1
          in
          Causal.push b ~step:time ~pid:culprit
            (Event.Violation
               {
                 property = Modelcheck.Invariant.mutex.name;
                 law = Modelcheck.Invariant.mutex.law;
                 detail =
                   Printf.sprintf
                     "processes %s are all inside the critical section (%s)"
                     (String.concat ", "
                        (List.map (fun i -> "p" ^ string_of_int i) pids))
                     (String.concat ", "
                        (List.map
                           (fun i ->
                             Printf.sprintf "p%d@%s" i (label pcs.(i)))
                           pids));
               })
      | SE.Crash { time; pid } ->
          Causal.push b ~step:time ~pid (Event.Reset { what = "crash" });
          pcs.(pid) <- init_pc
      | SE.Restart { time; pid } ->
          Causal.push b ~step:time ~pid (Event.Reset { what = "restart" })
      | SE.Flicker { time; pid; cell; value } ->
          let what =
            match var_of_global_cell cell with
            | Some (v, idx) ->
                Printf.sprintf "flickered read of %s[%d]"
                  program.var_names.(v) idx
            | None -> Printf.sprintf "flickered read of cell %d" cell
          in
          Causal.push b ~step:time ~pid (Event.Anomaly { what; cell; value })
      | SE.Cs_enter _ | SE.Cs_exit _ | SE.Doorway_done _ ->
          (* derivable from Label transitions; the unified trace keeps
             one source of truth *)
          ())
    r.events;
  Causal.finish b
