(* Derived queries over causal traces.

   E8's first-come-first-served inversions used to be a bespoke counter
   updated inside the runner's transition bookkeeping; here the same
   quantity is derived from the unified trace's label transitions alone,
   so any engine that emits a trace gets the metric — and the runner's
   counter doubles as a differential oracle for the trace pipeline
   (they must agree on every run). *)

(* FCFS in Lamport's sense: process q is overtaken when p enters its
   critical section although q finished its doorway before p *started*
   its own, and q is still waiting.  Tracks doorway start/completion
   times per process from Label kinds; crashes reset a process's claim
   (the runner does the same). *)
let fcfs_inversions (t : Event.trace) =
  let n = t.nprocs in
  let init_kind =
    match Event.meta_find t "init_kind" with
    | Some k -> k
    | None -> "noncritical"
  in
  let cur_kind = Array.make n init_kind in
  let doorway_start = Array.make n (-1) in
  let doorway_done = Array.make n (-1) in
  let inversions = ref 0 in
  Array.iter
    (fun (e : Event.t) ->
      match e.kind with
      | Event.Reset { what } when what = "crash" && e.pid >= 0 ->
          cur_kind.(e.pid) <- init_kind;
          doorway_start.(e.pid) <- -1;
          doorway_done.(e.pid) <- -1
      | Event.Label { from_kind; to_kind; _ } when e.pid >= 0 ->
          let p = e.pid in
          if from_kind <> "doorway" && to_kind = "doorway" then
            doorway_start.(p) <- e.step;
          (if from_kind = "doorway" && to_kind <> "doorway" then
             if to_kind = "entry" || to_kind = "noncritical" then begin
               (* abandoned doorway: no claim to a turn *)
               doorway_start.(p) <- -1;
               doorway_done.(p) <- -1
             end
             else doorway_done.(p) <- e.step);
          (* [cur_kind] must be updated after the overtaking check below
             reads the *other* processes' kinds, but before we use our
             own — order matters only for others, so update ours last. *)
          if from_kind <> "critical" && to_kind = "critical" then begin
            let my_start = doorway_start.(p) in
            if my_start >= 0 then
              for other = 0 to n - 1 do
                if
                  other <> p
                  && doorway_done.(other) >= 0
                  && doorway_done.(other) < my_start
                  && cur_kind.(other) <> "critical"
                then incr inversions
              done;
            doorway_start.(p) <- -1;
            doorway_done.(p) <- -1
          end;
          cur_kind.(p) <- to_kind
      | _ -> ())
    t.events;
  !inversions
