(** The unified structured event model shared by all three execution
    engines (schedsim runner, model-checker re-walker, runtime lock
    zoo).  Engine-agnostic: registers and labels are named by strings;
    conversions live in {!Of_sim}, {!Of_walk} and {!Of_locks}. *)

type kind =
  | Label of {
      from_label : string;
      to_label : string;
      from_kind : string;
      to_kind : string;
          (** step kinds as strings: "noncritical", "entry", "doorway",
              "waiting", "critical", "exit", "plain" *)
    }
  | Read of { var : string; cell : int; value : int }
  | Write of {
      var : string;
      cell : int;
      value : int;  (** value actually stored *)
      prev : int;  (** cell content before the store *)
      raw : int;  (** pre-wrap value; [raw <> value] means the store wrapped *)
    }
  | Acquire of { lock : string }
  | Release of { lock : string }
  | Wait of { what : string }  (** start of a blocking wait (L1, lock) *)
  | Reset of { what : string }  (** "crash", "restart" *)
  | Anomaly of { what : string; cell : int; value : int }
      (** flickered safe-register read, register overflow *)
  | Violation of { property : string; law : string; detail : string }

type t = {
  seq : int;  (** global emission index, 0-based, strictly increasing;
                  also the event's index in {!trace.events} *)
  step : int;  (** engine step counter (sim time / trace index / rel. ns) *)
  pid : int;  (** owning process; -1 for global events *)
  kind : kind;
  observed : int;
      (** [seq] of the write (for reads) or release (for acquires) this
          event causally observed; -1 when none *)
  vc : int array;  (** vector clock after this event, length nprocs *)
}

type trace = {
  source : string;  (** "sim" | "modelcheck" | "locks" *)
  model : string;
  nprocs : int;
  bound : int;  (** the paper's M; 0 when not meaningful (locks) *)
  meta : (string * string) list;
      (** e.g. "init_label", "init_kind", "outcome" *)
  events : t array;
}

val string_of_step_kind : Mxlang.Ast.kind -> string
val meta_find : trace -> string -> string option
val kind_tag : kind -> string
(** Lower-case constructor tag, the JSONL ["type"] field. *)
