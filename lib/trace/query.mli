(** Derived queries over causal traces. *)

val fcfs_inversions : Event.trace -> int
(** First-come-first-served inversions in Lamport's sense: critical-
    section entries that overtook a process whose doorway completed
    before the enterer's started and which is still waiting.  Derived
    from label transitions alone; agrees with
    [Schedsim.Runner.result.fcfs_inversions] on every simulator run
    (differentially tested). *)
