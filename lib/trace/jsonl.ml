(* Self-describing JSONL codec for causal traces.

   Line 1 is a header: schema version + Runmeta (host, git rev, …) +
   the trace identity (source, model, N, M, meta).  Every further line
   is one event.  Readers validate the schema version first and refuse
   incompatible files with a clear error instead of misparsing. *)

module J = Telemetry.Json

let num i = J.Num (float_of_int i)

let int_field line name =
  match J.member name line with
  | Some (J.Num v) -> Some (int_of_float v)
  | _ -> None

let str_field line name =
  match J.member name line with Some (J.Str s) -> Some s | _ -> None

let header_line (t : Event.trace) =
  J.Obj
    ([
       ("kind", J.Str "header");
       ("name", J.Str "trace");
     ]
    @ Telemetry.Runmeta.header_fields ()
    @ [
        ("source", J.Str t.source);
        ("model", J.Str t.model);
        ("trace_nprocs", num t.nprocs);
        ("bound", num t.bound);
        ( "meta",
          J.Obj (List.map (fun (k, v) -> (k, J.Str v)) t.meta) );
      ])

let kind_to_fields : Event.kind -> (string * J.t) list = function
  | Event.Label { from_label; to_label; from_kind; to_kind } ->
      [
        ("from_label", J.Str from_label);
        ("to_label", J.Str to_label);
        ("from_kind", J.Str from_kind);
        ("to_kind", J.Str to_kind);
      ]
  | Event.Read { var; cell; value } ->
      [ ("var", J.Str var); ("cell", num cell); ("value", num value) ]
  | Event.Write { var; cell; value; prev; raw } ->
      [
        ("var", J.Str var);
        ("cell", num cell);
        ("value", num value);
        ("prev", num prev);
        ("raw", num raw);
      ]
  | Event.Acquire { lock } -> [ ("lock", J.Str lock) ]
  | Event.Release { lock } -> [ ("lock", J.Str lock) ]
  | Event.Wait { what } -> [ ("what", J.Str what) ]
  | Event.Reset { what } -> [ ("what", J.Str what) ]
  | Event.Anomaly { what; cell; value } ->
      [ ("what", J.Str what); ("cell", num cell); ("value", num value) ]
  | Event.Violation { property; law; detail } ->
      [
        ("property", J.Str property);
        ("law", J.Str law);
        ("detail", J.Str detail);
      ]

let event_line (e : Event.t) =
  J.Obj
    ([
       ("kind", J.Str "event");
       ("type", J.Str (Event.kind_tag e.kind));
       ("seq", num e.seq);
       ("step", num e.step);
       ("pid", num e.pid);
       ("observed", num e.observed);
       ("vc", J.Arr (Array.to_list (Array.map (fun v -> num v) e.vc)));
     ]
    @ kind_to_fields e.kind)

let write ~path (t : Event.trace) =
  let oc = open_out path in
  output_string oc (J.to_string (header_line t));
  output_char oc '\n';
  Array.iter
    (fun e ->
      output_string oc (J.to_string (event_line e));
      output_char oc '\n')
    t.events;
  close_out oc

(* ------------------------------------------------------------ reading *)

let ( let* ) = Result.bind

let require name = function
  | Some v -> Ok v
  | None -> Error (Printf.sprintf "missing or malformed field %S" name)

let kind_of_line line =
  let* ty = require "type" (str_field line "type") in
  let str n = require n (str_field line n) in
  let int n = require n (int_field line n) in
  match ty with
  | "label" ->
      let* from_label = str "from_label" in
      let* to_label = str "to_label" in
      let* from_kind = str "from_kind" in
      let* to_kind = str "to_kind" in
      Ok (Event.Label { from_label; to_label; from_kind; to_kind })
  | "read" ->
      let* var = str "var" in
      let* cell = int "cell" in
      let* value = int "value" in
      Ok (Event.Read { var; cell; value })
  | "write" ->
      let* var = str "var" in
      let* cell = int "cell" in
      let* value = int "value" in
      let* prev = int "prev" in
      let* raw = int "raw" in
      Ok (Event.Write { var; cell; value; prev; raw })
  | "acquire" ->
      let* lock = str "lock" in
      Ok (Event.Acquire { lock })
  | "release" ->
      let* lock = str "lock" in
      Ok (Event.Release { lock })
  | "wait" ->
      let* what = str "what" in
      Ok (Event.Wait { what })
  | "reset" ->
      let* what = str "what" in
      Ok (Event.Reset { what })
  | "anomaly" ->
      let* what = str "what" in
      let* cell = int "cell" in
      let* value = int "value" in
      Ok (Event.Anomaly { what; cell; value })
  | "violation" ->
      let* property = str "property" in
      let* law = str "law" in
      let* detail = str "detail" in
      Ok (Event.Violation { property; law; detail })
  | other -> Error (Printf.sprintf "unknown event type %S" other)

let event_of_line line =
  let* kind = kind_of_line line in
  let* seq = require "seq" (int_field line "seq") in
  let* step = require "step" (int_field line "step") in
  let* pid = require "pid" (int_field line "pid") in
  let* observed = require "observed" (int_field line "observed") in
  let* vc =
    match J.member "vc" line with
    | Some (J.Arr l) ->
        Ok
          (Array.of_list
             (List.map
                (function J.Num v -> int_of_float v | _ -> 0)
                l))
    | _ -> Error "missing or malformed field \"vc\""
  in
  Ok { Event.seq; step; pid; kind; observed; vc }

let trace_of_lines = function
  | [] -> Error "empty trace file"
  | header :: rest ->
      let* header =
        Result.map_error (fun e -> "unparseable header line: " ^ e)
          (J.parse header)
      in
      let* () = Telemetry.Runmeta.check_schema header in
      let* source = require "source" (str_field header "source") in
      let* model = require "model" (str_field header "model") in
      let* nprocs = require "trace_nprocs" (int_field header "trace_nprocs") in
      let* bound = require "bound" (int_field header "bound") in
      let meta =
        match J.member "meta" header with
        | Some (J.Obj kvs) ->
            List.filter_map
              (fun (k, v) ->
                match v with J.Str s -> Some (k, s) | _ -> None)
              kvs
        | _ -> []
      in
      let* events =
        List.fold_left
          (fun acc line ->
            let* acc = acc in
            let* line =
              Result.map_error
                (fun e -> "unparseable event line: " ^ e)
                (J.parse line)
            in
            let* e = event_of_line line in
            Ok (e :: acc))
          (Ok []) rest
      in
      Ok
        {
          Event.source;
          model;
          nprocs;
          bound;
          meta;
          events = Array.of_list (List.rev events);
        }

let read ~path =
  match open_in path with
  | exception Sys_error e -> Error e
  | ic ->
      let lines = ref [] in
      (try
         while true do
           let l = input_line ic in
           if String.trim l <> "" then lines := l :: !lines
         done
       with End_of_file -> close_in ic);
      Result.map_error
        (fun e -> Printf.sprintf "%s: %s" path e)
        (trace_of_lines (List.rev !lines))
