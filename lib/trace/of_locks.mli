(** Lock-zoo ring buffers -> unified causal trace.

    [step] is nanoseconds relative to the first record; causality comes
    from acquire-observes-previous-release. *)

val trace : lock:string -> nprocs:int -> Locks.Ring.entry list -> Event.trace
(** Feed with {!Locks.Ring.flush} output (already time-sorted). *)
