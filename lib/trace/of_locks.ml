(* Lock-zoo ring buffers -> unified causal trace.

   The [step] field carries nanoseconds relative to the first record
   (real time is the only meaningful clock for domain runs); causality
   comes from acquire-observes-previous-release, which the ring
   recorder's stamp ordering guarantees whenever the lock actually
   changed hands (see {!Locks.Ring.wrap}). *)

let trace ~lock ~nprocs (entries : Locks.Ring.entry list) =
  let t0 =
    match entries with [] -> 0 | e :: _ -> e.Locks.Ring.e_t_ns
  in
  let b =
    Causal.create ~source:"locks" ~model:lock ~nprocs ~bound:0
      ~meta:[ ("time_unit", "ns") ]
      ()
  in
  List.iter
    (fun (e : Locks.Ring.entry) ->
      let step = e.e_t_ns - t0 in
      match e.e_op with
      | Locks.Ring.Acquire_start ->
          Causal.push b ~step ~pid:e.e_pid
            (Event.Wait { what = "acquire " ^ lock })
      | Locks.Ring.Acquired ->
          Causal.push b ~step ~pid:e.e_pid (Event.Acquire { lock })
      | Locks.Ring.Released ->
          Causal.push b ~step ~pid:e.e_pid (Event.Release { lock }))
    entries;
  Causal.finish b
