(** Schedsim events -> unified causal trace.

    The run must have been recorded with
    [Schedsim.Runner.config.record_events = true]; register-level
    reads/writes additionally need [record_rw = true] (without them the
    trace still carries label transitions, resets and violations —
    enough for Chrome export and {!Query.fcfs_inversions}, not for
    reads-from analysis). *)

val trace :
  ?model:string ->
  Mxlang.Ast.program ->
  nprocs:int ->
  bound:int ->
  Schedsim.Runner.result ->
  Event.trace
(** [?model] defaults to the program title. *)
