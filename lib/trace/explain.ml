(* The explainer: render a causal trace as an annotated story.

   Output is a pure function of the trace (no wall clocks, no paths),
   so the same counterexample always explains identically — the golden
   tests rely on that.  The story has three parts: a header, the
   step-by-step narrative (one block per engine step: label transition,
   reads with their causal provenance, writes as state diffs), and for
   violating traces the reduction of the failure to the specific
   invariant conjunct plus the causal chain to the corrupting write. *)

let b_add = Buffer.add_string

(* Events of one engine step by one process, in emission order. *)
type block = { b_step : int; b_pid : int; b_events : Event.t list }

let blocks_of (t : Event.trace) =
  let rev = ref [] in
  Array.iter
    (fun (e : Event.t) ->
      match !rev with
      | { b_step; b_pid; b_events } :: rest
        when b_step = e.step && b_pid = e.pid ->
          rev := { b_step; b_pid; b_events = e :: b_events } :: rest
      | _ -> rev := { b_step = e.step; b_pid = e.pid; b_events = [ e ] } :: !rev)
    t.events;
  List.rev_map
    (fun b -> { b with b_events = List.rev b.b_events })
    !rev

let writer_of (t : Event.trace) seq =
  if seq >= 0 && seq < Array.length t.events then Some t.events.(seq) else None

let render_read buf (t : Event.trace) (e : Event.t) ~var ~cell ~value =
  b_add buf (Printf.sprintf "         read   %s[%d] = %d" var cell value);
  (match writer_of t e.observed with
  | Some ({ kind = Event.Write { raw; value = wv; _ }; _ } as w) ->
      if raw <> wv then
        b_add buf
          (Printf.sprintf "   <- p%d's write at step %d, WRAPPED from %d"
             w.pid w.step raw)
      else
        b_add buf
          (Printf.sprintf "   <- written by p%d at step %d" w.pid w.step)
  | _ -> b_add buf "   (initial value)");
  b_add buf "\n"

let render_block buf (t : Event.trace) (b : block) =
  let head = ref false in
  let headline s =
    head := true;
    b_add buf (Printf.sprintf "step %4d  p%d  %s\n" b.b_step b.b_pid s)
  in
  let sub s =
    if not !head then headline "";
    b_add buf ("         " ^ s ^ "\n")
  in
  (* The label transition (if any) becomes the headline; everything else
     is indented under it.  Emission order within a step is reads,
     writes, label — but the story reads better label-first. *)
  (match
     List.find_opt
       (fun (e : Event.t) ->
         match e.kind with Event.Label _ -> true | _ -> false)
       b.b_events
   with
  | Some { kind = Event.Label { from_label; to_label; from_kind; to_kind }; _ }
    ->
      let marker =
        if to_kind = "critical" && from_kind <> "critical" then
          "   << enters the critical section"
        else if from_kind = "critical" && to_kind <> "critical" then
          "   >> leaves the critical section"
        else if from_kind = "doorway" && to_kind <> "doorway" then
          if to_kind = "entry" || to_kind = "noncritical" then
            "   (abandons its doorway)"
          else "   (doorway complete)"
        else ""
      in
      if from_label = to_label then headline (from_label ^ marker)
      else headline (from_label ^ " -> " ^ to_label ^ marker)
  | _ -> ());
  List.iter
    (fun (e : Event.t) ->
      match e.kind with
      | Event.Label _ -> ()
      | Event.Read { var; cell; value } ->
          if not !head then headline "";
          render_read buf t e ~var ~cell ~value
      | Event.Write { var; cell; value; prev; raw } ->
          sub
            (if raw <> value then
               Printf.sprintf "write  %s[%d] := %d  (was %d; WRAPPED from %d > M = %d)"
                 var cell value prev raw t.bound
             else if prev = value then
               Printf.sprintf "write  %s[%d] := %d  (unchanged)" var cell value
             else
               Printf.sprintf "write  %s[%d] := %d  (was %d)" var cell value
                 prev)
      | Event.Acquire { lock } -> sub ("acquired " ^ lock)
      | Event.Release { lock } -> sub ("released " ^ lock)
      | Event.Wait { what } -> sub ("waiting: " ^ what)
      | Event.Reset { what } ->
          if what = "crash" then
            headline
              (match Event.meta_find t "init_label" with
              | Some l ->
                  Printf.sprintf
                    "** crash: resets its own registers, restarts at %s **" l
              | None -> "** crash **")
          else headline ("** " ^ what ^ " **")
      | Event.Anomaly { what; value; _ } ->
          sub (Printf.sprintf "!! %s returned %d" what value)
      | Event.Violation { property; _ } ->
          sub (Printf.sprintf "** VIOLATION: %s **" property))
    b.b_events

let last_violation (t : Event.trace) =
  Array.fold_left
    (fun acc (e : Event.t) ->
      match e.kind with Event.Violation _ -> Some e | _ -> acc)
    None t.events

(* The causal chain: which observation admitted the violator?  Prefer
   reads that observed a *wrapped* write (the paper's §3 corruption) —
   even the violator's own, since reading back your own wrapped ticket
   is exactly how the corruption bites — otherwise the latest
   cross-process read. *)
let fatal_read (t : Event.trace) (v : Event.t) =
  let candidate best (e : Event.t) =
    match e.kind with
    | Event.Read _ when e.pid = v.pid && e.seq < v.seq && e.observed >= 0 -> (
        match writer_of t e.observed with
        | Some w -> (
            let wrapped =
              match w.kind with
              | Event.Write { raw; value; _ } -> raw <> value
              | _ -> false
            in
            if not (wrapped || w.pid <> e.pid) then best
            else
              match best with
              | Some (_, _, best_wrapped) when best_wrapped && not wrapped ->
                  best
              | _ -> Some (e, w, wrapped))
        | _ -> best)
    | _ -> best
  in
  Array.fold_left candidate None t.events

let render_violation buf (t : Event.trace) (v : Event.t) =
  match v.kind with
  | Event.Violation { property; law; detail } ->
      b_add buf "---- violation ----\n";
      b_add buf (Printf.sprintf "property:  %s\n" property);
      b_add buf (Printf.sprintf "law:       %s\n" law);
      b_add buf (Printf.sprintf "falsified: %s\n" detail);
      b_add buf (Printf.sprintf "at step:   %d (by p%d)\n" v.step v.pid);
      b_add buf "\n---- causal analysis ----\n";
      (if property = "no-overflow" then
         (* the corrupting event is the store itself *)
         match
           Array.fold_left
             (fun acc (e : Event.t) ->
               match e.kind with
               | Event.Write { value; _ } when value > t.bound && e.seq < v.seq
                 ->
                   Some e
               | _ -> acc)
             None t.events
         with
         | Some ({ kind = Event.Write { var; cell; value; _ }; _ } as w) ->
             b_add buf
               (Printf.sprintf
                  "the store by p%d at step %d pushed %s[%d] to %d > M = %d.\n"
                  w.pid w.step var cell value t.bound)
         | _ -> b_add buf "no overflowing store found in the recorded window.\n"
       else
         match fatal_read t v with
         | Some (r, w, wrapped) ->
             let rv, rvar, rcell =
               match r.kind with
               | Event.Read { value; var; cell } -> (value, var, cell)
               | _ -> (0, "?", -1)
             in
             b_add buf
               (Printf.sprintf
                  "p%d's admission rests on its read of %s[%d] = %d at step \
                   %d,\n"
                  v.pid rvar rcell rv r.step);
             let whose =
               if w.pid = r.pid then "its own"
               else Printf.sprintf "p%d's" w.pid
             in
             (match w.kind with
             | Event.Write { var; cell; value; raw; _ } when wrapped ->
                 b_add buf
                   (Printf.sprintf
                      "which observed %s write at step %d: %s[%d] := %d, \
                       WRAPPED from the raw value %d (> M = %d).\n"
                      whose w.step var cell value raw t.bound);
                 b_add buf
                   "the wrapped register is the §3 corruption: the reader \
                    mistakes a large\n\
                    ticket for a small one and overtakes the rightful \
                    holder.\n"
             | Event.Write { var; cell; value; _ } ->
                 b_add buf
                   (Printf.sprintf
                      "which observed %s write at step %d: %s[%d] := %d.\n"
                      whose w.step var cell value)
             | _ -> ());
             b_add buf
               (Printf.sprintf "happens-before: write vc=%s  <  read vc=%s\n"
                  (Vclock.to_string w.vc) (Vclock.to_string r.vc))
         | None ->
             b_add buf
               (Printf.sprintf
                  "no cross-process register observation by p%d precedes the \
                   violation\n\
                   (register events absent? rerun with tracing enabled).\n"
                  v.pid))
  | _ -> ()

let render ?(max_steps = 0) (t : Event.trace) =
  let buf = Buffer.create 4096 in
  b_add buf
    (Printf.sprintf "forensics: %s  (source: %s, N=%d%s)\n" t.model t.source
       t.nprocs
       (if t.bound > 0 then Printf.sprintf ", M=%d" t.bound else ""));
  List.iter
    (fun (k, v) ->
      if k <> "init_label" && k <> "init_kind" then
        b_add buf (Printf.sprintf "%s: %s\n" k v))
    t.meta;
  (match Event.meta_find t "init_label" with
  | Some l -> b_add buf (Printf.sprintf "all processes start at %s\n" l)
  | None -> ());
  b_add buf "\n";
  let blocks = blocks_of t in
  let nblocks = List.length blocks in
  let blocks =
    if max_steps > 0 && nblocks > max_steps then begin
      b_add buf
        (Printf.sprintf
           "... (%d earlier steps elided; raise --max-steps to see them)\n"
           (nblocks - max_steps));
      let rec drop n l = if n <= 0 then l else match l with [] -> [] | _ :: tl -> drop (n - 1) tl in
      drop (nblocks - max_steps) blocks
    end
    else blocks
  in
  List.iter (render_block buf t) blocks;
  b_add buf "\n";
  (match last_violation t with
  | Some v -> render_violation buf t v
  | None -> b_add buf "no violation recorded in this trace.\n");
  Buffer.contents buf
