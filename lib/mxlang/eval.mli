(** Evaluation of mxlang expressions and actions against a concrete
    machine state.

    The state layout is shared with the model checker and the simulator:
    shared memory is a flat [int array] (variables laid out back to back,
    per-process arrays expanded to [nprocs] cells), and each process owns a
    flat [int array] of locals. *)

exception Error of string
(** Raised on dynamic errors: out-of-range shared index, modulo by zero. *)

type env = {
  program : Ast.program;
  nprocs : int;  (** number of processes, the paper's N *)
  bound : int;  (** register capacity, the paper's M *)
  offsets : int array;  (** start offset of each shared variable *)
  shared_cells : int;  (** total number of shared cells *)
}

val make_env : Ast.program -> nprocs:int -> bound:int -> env
(** Precompute the memory layout of [program] for [nprocs] processes. *)

val offset : env -> Ast.var -> int
(** Offset of the first cell of a variable in the flat shared array. *)

val init_shared : env -> int array
(** Freshly allocated initial shared memory. *)

val init_locals : env -> int array
(** Freshly allocated initial locals for one process. *)

val in_range : pid:int -> Ast.range -> int -> bool
(** Is process [i] inside a quantification range, relative to [pid]?
    (Shared with {!Compile}, which unrolls ranges statically.) *)

val eval : env -> shared:int array -> locals:int array -> pid:int -> Ast.expr -> int
(** Evaluate an integer expression. *)

val eval_b : env -> shared:int array -> locals:int array -> pid:int -> Ast.bexpr -> bool
(** Evaluate a boolean expression. *)

val enabled_actions :
  env -> shared:int array -> locals:int array -> pid:int -> pc:int -> Ast.action list
(** All actions of the step at [pc] whose guards hold in the given state. *)

val apply :
  env ->
  shared:int array ->
  locals:int array ->
  pid:int ->
  Ast.action ->
  unit
(** Apply an action's effects in place (simultaneous-assignment semantics:
    all right-hand sides and indices are evaluated before any write).
    The caller is responsible for updating the process's program counter
    to [action.target]. *)

val apply_split :
  env ->
  rshared:int array ->
  shared:int array ->
  locals:int array ->
  pid:int ->
  Ast.action ->
  unit
(** Like {!apply}, but reads shared cells from [rshared] while writing
    into [shared].  Used by the weak-register engine: [rshared] is a
    flickered view of the pre-state, so the action computes with the
    values its overlapping reads returned while its writes land in the
    real successor.  [apply] is [apply_split] with [rshared == shared]. *)
