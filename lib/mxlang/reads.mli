(** Shared-register read-set extraction for causal tracing.

    Given an action and the pre-state it executed in, recover the shared
    cells its guard and effects actually observed, with the values seen.
    The walk mirrors {!Eval}'s control flow — short-circuit connectives,
    the taken [Ite] branch, quantifier loops stopping at the deciding
    witness — so the result is exactly the set of cells the verdict
    depended on, not a syntactic over-approximation. *)

type read = {
  rd_var : Ast.var;  (** which shared variable *)
  rd_cell : int;  (** cell index within the variable *)
  rd_value : int;  (** value observed in the pre-state *)
}

val of_action :
  Eval.env ->
  shared:int array ->
  locals:int array ->
  pid:int ->
  Ast.action ->
  read list
(** Reads performed by [action]'s guard and effects (right-hand sides
    and destination indices) in evaluation order, deduplicated by
    (variable, cell) keeping the first occurrence.  The action must be
    executable in the given state (same precondition as {!Eval.apply}). *)

val static_cells : Eval.env -> pid:int -> Ast.action -> int array
(** Sorted flat shared offsets the action may read in ANY state: both
    [Ite] branches, all quantifier instantiations, and dynamic array
    indices widened to the whole array.  A superset of [of_action]'s
    cells in every state, which is what the weak-register flicker
    enumerator needs (a candidate view may flip the control flow). *)
