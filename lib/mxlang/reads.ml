(* Shared-register read-set extraction.

   Causal trace analysis (lib/trace) needs to know which register cells
   an executed action *observed*, with the values it saw — that is the
   happens-before edge of Lamport's bakery argument ("the fatal read saw
   the wrapped write").  The extractor mirrors the evaluator's actual
   control flow: short-circuit [And]/[Or], the taken branch of [Ite],
   and quantifier loops that stop at the deciding witness — so the
   result is exactly the set of cells whose values the interpreter's
   verdict depended on, in evaluation order. *)

type read = { rd_var : Ast.var; rd_cell : int; rd_value : int }

type ctx = {
  env : Eval.env;
  shared : int array;
  locals : int array;
  pid : int;
  mutable acc : read list; (* reversed *)
}

let note ctx v idx =
  let value = ctx.shared.(Eval.offset ctx.env v + idx) in
  ctx.acc <- { rd_var = v; rd_cell = idx; rd_value = value } :: ctx.acc;
  value

let rec expr ctx ~q (e : Ast.expr) =
  match e with
  | Int k -> k
  | N -> ctx.env.Eval.nprocs
  | M -> ctx.env.Eval.bound
  | Pid -> ctx.pid
  | Qidx ->
      if q < 0 then raise (Eval.Error "Qidx used outside a quantifier") else q
  | Local l -> ctx.locals.(l)
  | Rd (v, ix) -> note ctx v (expr ctx ~q ix)
  | Add (a, b) -> expr ctx ~q a + expr ctx ~q b
  | Sub (a, b) -> expr ctx ~q a - expr ctx ~q b
  | Mul (a, b) -> expr ctx ~q a * expr ctx ~q b
  | Mod (a, b) ->
      let x = expr ctx ~q a in
      let d = expr ctx ~q b in
      if d = 0 then raise (Eval.Error "modulo by zero");
      ((x mod d) + d) mod d
  | Max_arr v ->
      (* the max scan reads every cell of the array *)
      let n = Ast.cells_of ~nprocs:ctx.env.Eval.nprocs ctx.env.Eval.program v in
      let best = ref (note ctx v 0) in
      for i = 1 to n - 1 do
        let x = note ctx v i in
        if x > !best then best := x
      done;
      !best
  | Ite (c, a, b) -> if bexpr ctx ~q c then expr ctx ~q a else expr ctx ~q b

and bexpr ctx ~q (b : Ast.bexpr) =
  match b with
  | True -> true
  | False -> false
  | Not x -> not (bexpr ctx ~q x)
  | And (x, y) -> bexpr ctx ~q x && bexpr ctx ~q y
  | Or (x, y) -> bexpr ctx ~q x || bexpr ctx ~q y
  | Cmp (c, x, y) -> Ast.compare_with c (expr ctx ~q x) (expr ctx ~q y)
  | Lex_lt ((a, b1), (c, d)) ->
      let a = expr ctx ~q a in
      let b1 = expr ctx ~q b1 in
      let c = expr ctx ~q c in
      let d = expr ctx ~q d in
      a < c || (a = c && b1 < d)
  | Qexists (range, p) ->
      let rec loop i =
        i < ctx.env.Eval.nprocs
        && ((Eval.in_range ~pid:ctx.pid range i && bexpr ctx ~q:i p)
           || loop (i + 1))
      in
      loop 0
  | Qall (range, p) ->
      let rec loop i =
        i >= ctx.env.Eval.nprocs
        || (((not (Eval.in_range ~pid:ctx.pid range i)) || bexpr ctx ~q:i p)
           && loop (i + 1))
      in
      loop 0

(* Keep the first observation of each (var, cell): re-reads in the same
   atomic action necessarily see the same value (writes land after all
   evaluation), so duplicates carry no extra information. *)
let dedup reads =
  let seen = Hashtbl.create 8 in
  List.filter
    (fun r ->
      let key = (r.rd_var, r.rd_cell) in
      if Hashtbl.mem seen key then false
      else begin
        Hashtbl.add seen key ();
        true
      end)
    reads

let of_action env ~shared ~locals ~pid (a : Ast.action) =
  let ctx = { env; shared; locals; pid; acc = [] } in
  ignore (bexpr ctx ~q:(-1) a.guard);
  List.iter
    (fun (l, e) ->
      ignore (expr ctx ~q:(-1) e);
      match l with
      | Ast.Lo _ -> ()
      | Ast.Sh (_, ix) -> ignore (expr ctx ~q:(-1) ix))
    a.effects;
  dedup (List.rev ctx.acc)
