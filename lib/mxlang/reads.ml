(* Shared-register read-set extraction.

   Causal trace analysis (lib/trace) needs to know which register cells
   an executed action *observed*, with the values it saw — that is the
   happens-before edge of Lamport's bakery argument ("the fatal read saw
   the wrapped write").  The extractor mirrors the evaluator's actual
   control flow: short-circuit [And]/[Or], the taken branch of [Ite],
   and quantifier loops that stop at the deciding witness — so the
   result is exactly the set of cells whose values the interpreter's
   verdict depended on, in evaluation order. *)

type read = { rd_var : Ast.var; rd_cell : int; rd_value : int }

type ctx = {
  env : Eval.env;
  shared : int array;
  locals : int array;
  pid : int;
  mutable acc : read list; (* reversed *)
}

let note ctx v idx =
  let value = ctx.shared.(Eval.offset ctx.env v + idx) in
  ctx.acc <- { rd_var = v; rd_cell = idx; rd_value = value } :: ctx.acc;
  value

let rec expr ctx ~q (e : Ast.expr) =
  match e with
  | Int k -> k
  | N -> ctx.env.Eval.nprocs
  | M -> ctx.env.Eval.bound
  | Pid -> ctx.pid
  | Qidx ->
      if q < 0 then raise (Eval.Error "Qidx used outside a quantifier") else q
  | Local l -> ctx.locals.(l)
  | Rd (v, ix) -> note ctx v (expr ctx ~q ix)
  | Add (a, b) -> expr ctx ~q a + expr ctx ~q b
  | Sub (a, b) -> expr ctx ~q a - expr ctx ~q b
  | Mul (a, b) -> expr ctx ~q a * expr ctx ~q b
  | Mod (a, b) ->
      let x = expr ctx ~q a in
      let d = expr ctx ~q b in
      if d = 0 then raise (Eval.Error "modulo by zero");
      ((x mod d) + d) mod d
  | Max_arr v ->
      (* the max scan reads every cell of the array *)
      let n = Ast.cells_of ~nprocs:ctx.env.Eval.nprocs ctx.env.Eval.program v in
      let best = ref (note ctx v 0) in
      for i = 1 to n - 1 do
        let x = note ctx v i in
        if x > !best then best := x
      done;
      !best
  | Ite (c, a, b) -> if bexpr ctx ~q c then expr ctx ~q a else expr ctx ~q b

and bexpr ctx ~q (b : Ast.bexpr) =
  match b with
  | True -> true
  | False -> false
  | Not x -> not (bexpr ctx ~q x)
  | And (x, y) -> bexpr ctx ~q x && bexpr ctx ~q y
  | Or (x, y) -> bexpr ctx ~q x || bexpr ctx ~q y
  | Cmp (c, x, y) -> Ast.compare_with c (expr ctx ~q x) (expr ctx ~q y)
  | Lex_lt ((a, b1), (c, d)) ->
      let a = expr ctx ~q a in
      let b1 = expr ctx ~q b1 in
      let c = expr ctx ~q c in
      let d = expr ctx ~q d in
      a < c || (a = c && b1 < d)
  | Qexists (range, p) ->
      let rec loop i =
        i < ctx.env.Eval.nprocs
        && ((Eval.in_range ~pid:ctx.pid range i && bexpr ctx ~q:i p)
           || loop (i + 1))
      in
      loop 0
  | Qall (range, p) ->
      let rec loop i =
        i >= ctx.env.Eval.nprocs
        || (((not (Eval.in_range ~pid:ctx.pid range i)) || bexpr ctx ~q:i p)
           && loop (i + 1))
      in
      loop 0

(* Keep the first observation of each (var, cell): re-reads in the same
   atomic action necessarily see the same value (writes land after all
   evaluation), so duplicates carry no extra information. *)
let dedup reads =
  let seen = Hashtbl.create 8 in
  List.filter
    (fun r ->
      let key = (r.rd_var, r.rd_cell) in
      if Hashtbl.mem seen key then false
      else begin
        Hashtbl.add seen key ();
        true
      end)
    reads

let of_action env ~shared ~locals ~pid (a : Ast.action) =
  let ctx = { env; shared; locals; pid; acc = [] } in
  ignore (bexpr ctx ~q:(-1) a.guard);
  List.iter
    (fun (l, e) ->
      ignore (expr ctx ~q:(-1) e);
      match l with
      | Ast.Lo _ -> ()
      | Ast.Sh (_, ix) -> ignore (expr ctx ~q:(-1) ix))
    a.effects;
  dedup (List.rev ctx.acc)

(* Static over-approximation of the cells an action may read, for the
   weak-register engine: the flicker enumerator must know every cell a
   guard or effect COULD observe under any candidate view, so unlike
   [of_action] this walk takes both [Ite] branches, unrolls quantifiers
   over every in-range index, and widens a dynamic array index to the
   whole array.  Constant folding (with [pid] and the unrolled [Qidx]
   known) keeps the common fixed-index reads exact. *)
let static_cells env ~pid (a : Ast.action) =
  let ncells v = Ast.cells_of ~nprocs:env.Eval.nprocs env.Eval.program v in
  let marked = Array.make env.Eval.shared_cells false in
  let mark_all v =
    let o = Eval.offset env v in
    for i = 0 to ncells v - 1 do
      marked.(o + i) <- true
    done
  in
  let rec const ~q (e : Ast.expr) =
    match e with
    | Ast.Int k -> Some k
    | N -> Some env.Eval.nprocs
    | M -> Some env.Eval.bound
    | Pid -> Some pid
    | Qidx -> q
    | Local _ | Rd _ | Max_arr _ -> None
    | Add (a, b) -> const2 ~q ( + ) a b
    | Sub (a, b) -> const2 ~q ( - ) a b
    | Mul (a, b) -> const2 ~q ( * ) a b
    | Mod (a, b) -> (
        match (const ~q a, const ~q b) with
        | Some x, Some d when d <> 0 -> Some (((x mod d) + d) mod d)
        | _ -> None)
    | Ite (_, a, b) -> (
        match (const ~q a, const ~q b) with
        | Some x, Some y when x = y -> Some x
        | _ -> None)
  and const2 ~q op a b =
    match (const ~q a, const ~q b) with
    | Some x, Some y -> Some (op x y)
    | _ -> None
  in
  let rec walk_e ~q (e : Ast.expr) =
    match e with
    | Ast.Int _ | N | M | Pid | Qidx | Local _ -> ()
    | Rd (v, ix) -> (
        walk_e ~q ix;
        match const ~q ix with
        | Some i when i >= 0 && i < ncells v -> marked.(Eval.offset env v + i) <- true
        | Some _ -> () (* out of range: raises at runtime, reads nothing *)
        | None -> mark_all v)
    | Add (a, b) | Sub (a, b) | Mul (a, b) | Mod (a, b) ->
        walk_e ~q a;
        walk_e ~q b
    | Max_arr v -> mark_all v
    | Ite (c, a, b) ->
        walk_b ~q c;
        walk_e ~q a;
        walk_e ~q b
  and walk_b ~q (b : Ast.bexpr) =
    match b with
    | Ast.True | False -> ()
    | Not x -> walk_b ~q x
    | And (x, y) | Or (x, y) ->
        walk_b ~q x;
        walk_b ~q y
    | Cmp (_, x, y) ->
        walk_e ~q x;
        walk_e ~q y
    | Lex_lt ((a, b1), (c, d)) -> List.iter (walk_e ~q) [ a; b1; c; d ]
    | Qexists (range, p) | Qall (range, p) ->
        for i = 0 to env.Eval.nprocs - 1 do
          if Eval.in_range ~pid range i then walk_b ~q:(Some i) p
        done
  in
  walk_b ~q:None a.guard;
  List.iter
    (fun (l, e) ->
      walk_e ~q:None e;
      match l with
      | Ast.Lo _ -> ()
      | Ast.Sh (_, ix) -> walk_e ~q:None ix)
    a.effects;
  let count = ref 0 in
  Array.iter (fun b -> if b then incr count) marked;
  let out = Array.make !count 0 and k = ref 0 in
  Array.iteri
    (fun cell b ->
      if b then begin
        out.(!k) <- cell;
        incr k
      end)
    marked;
  out
