(* Staged compiler from the mxlang AST to closure-based native code.

   The interpreter ([Eval.eval_q]) re-walks the AST on every guard test
   and effect application — the model checker's hottest path.  This pass
   walks each expression ONCE per (step, action, pid) at [System.make]
   time and produces plain OCaml closures over a single flat memory
   image (the checker's packed state: shared cells first, then pcs, then
   per-process locals).  Three sources of speed:

   - the executing [pid] is a compile-time constant, so [Pid] and every
     quantifier range ([Rbelow], [Rabove], [Rothers]) resolve statically;
   - quantifiers unroll against the known [nprocs] into short-circuit
     chains whose bodies see [Qidx] as a constant, which in turn makes
     most shared reads constant-offset loads;
   - constant subexpressions fold away, so a typical Bakery guard
     compiles to a handful of array loads and comparisons.

   Dynamic-error behaviour is bit-compatible with the interpreter: the
   same [Eval.Error] messages are raised at the same evaluation points
   (never at compile time), including short-circuit evaluation order of
   [And]/[Or]/quantifiers and the value-then-index order of effects.

   Compiled closures use unchecked array accesses only where the offset
   is proven in range at compile time against the layout (constant
   local/shared offsets, unrolled array scans) or guarded by the
   interpreter-identical bounds check immediately before the access.
   Callers must evaluate against a full-layout image (see the mli). *)

exception Error = Eval.Error

(* A compiled integer expression, with constants kept symbolic so that
   enclosing expressions can fold them. *)
type cexpr = Const of int | Dyn of (int array -> int)

type cbexpr = Bconst of bool | Bdyn of (int array -> bool)

let force = function Const k -> fun _ -> k | Dyn f -> f
let bforce = function Bconst b -> fun _ -> b | Bdyn f -> f

(* Lift a dynamic error into a closure so it fires at evaluation time,
   exactly where the interpreter would raise it. *)
let raising msg = Dyn (fun _ -> raise (Error msg))

let read_error env v idx =
  Printf.sprintf "read %s[%d]: index out of range 0..%d"
    env.Eval.program.var_names.(v) idx
    (Ast.cells_of ~nprocs:env.nprocs env.program v - 1)

let write_error env v idx =
  Printf.sprintf "write %s[%d]: index out of range"
    env.Eval.program.var_names.(v) idx

(* [lbase] is the offset of the executing process's locals inside the
   flat memory image; [q] is the constant bound by the innermost
   unrolled quantifier, or [None] outside any quantifier. *)
let rec cexpr_of env ~lbase ~pid ~q (e : Ast.expr) : cexpr =
  let open Eval in
  match e with
  | Ast.Int k -> Const k
  | N -> Const env.nprocs
  | M -> Const env.bound
  | Pid -> Const pid
  | Qidx -> (
      match q with
      | Some i -> Const i
      | None -> raising "Qidx used outside a quantifier")
  | Local l ->
      let off = lbase + l in
      Dyn (fun m -> Array.unsafe_get m off)
  | Rd (v, ix) -> (
      let o = env.offsets.(v) and n = Ast.cells_of ~nprocs:env.nprocs env.program v in
      match cexpr_of env ~lbase ~pid ~q ix with
      | Const i when i >= 0 && i < n ->
          let cell = o + i in
          Dyn (fun m -> Array.unsafe_get m cell)
      | Const i -> raising (read_error env v i)
      | Dyn f ->
          Dyn
            (fun m ->
              let i = f m in
              if i < 0 || i >= n then raise (Error (read_error env v i));
              Array.unsafe_get m (o + i)))
  | Add (a, b) -> arith env ~lbase ~pid ~q ( + ) a b
  | Sub (a, b) -> arith env ~lbase ~pid ~q ( - ) a b
  | Mul (a, b) -> arith env ~lbase ~pid ~q ( * ) a b
  | Mod (a, b) -> (
      let euclid x d =
        if d = 0 then raise (Error "modulo by zero");
        ((x mod d) + d) mod d
      in
      match
        (cexpr_of env ~lbase ~pid ~q a, cexpr_of env ~lbase ~pid ~q b)
      with
      | Const x, Const d when d <> 0 -> Const (euclid x d)
      | ca, cb ->
          let fa = force ca and fb = force cb in
          (* The interpreter evaluates the divisor first and rejects a
             zero divisor before touching the dividend. *)
          Dyn
            (fun m ->
              let d = fb m in
              if d = 0 then raise (Error "modulo by zero");
              ((fa m mod d) + d) mod d))
  | Max_arr v ->
      let o = env.offsets.(v) and n = Ast.cells_of ~nprocs:env.nprocs env.program v in
      Dyn
        (fun m ->
          let best = ref (Array.unsafe_get m o) in
          for i = 1 to n - 1 do
            let x = Array.unsafe_get m (o + i) in
            if x > !best then best := x
          done;
          !best)
  | Ite (c, a, b) -> (
      match cbexpr_of env ~lbase ~pid ~q c with
      | Bconst true -> cexpr_of env ~lbase ~pid ~q a
      | Bconst false -> cexpr_of env ~lbase ~pid ~q b
      | Bdyn fc -> (
          let ca = cexpr_of env ~lbase ~pid ~q a
          and cb = cexpr_of env ~lbase ~pid ~q b in
          match (ca, cb) with
          | Const x, Const y when x = y -> Dyn (fun m -> ignore (fc m); x)
          | _ ->
              let fa = force ca and fb = force cb in
              Dyn (fun m -> if fc m then fa m else fb m)))

and arith env ~lbase ~pid ~q op a b =
  match (cexpr_of env ~lbase ~pid ~q a, cexpr_of env ~lbase ~pid ~q b) with
  | Const x, Const y -> Const (op x y)
  | ca, cb ->
      let fa = force ca and fb = force cb in
      Dyn (fun m -> op (fa m) (fb m))

and cbexpr_of env ~lbase ~pid ~q (b : Ast.bexpr) : cbexpr =
  match b with
  | Ast.True -> Bconst true
  | False -> Bconst false
  | Not x -> (
      match cbexpr_of env ~lbase ~pid ~q x with
      | Bconst v -> Bconst (not v)
      | Bdyn f -> Bdyn (fun m -> not (f m)))
  | And (x, y) -> (
      match cbexpr_of env ~lbase ~pid ~q x with
      | Bconst false -> Bconst false
      | Bconst true -> cbexpr_of env ~lbase ~pid ~q y
      | Bdyn fx -> (
          match cbexpr_of env ~lbase ~pid ~q y with
          | Bconst false -> Bdyn (fun m -> fx m && false)
          | Bconst true -> Bdyn fx
          | Bdyn fy -> Bdyn (fun m -> fx m && fy m)))
  | Or (x, y) -> (
      match cbexpr_of env ~lbase ~pid ~q x with
      | Bconst true -> Bconst true
      | Bconst false -> cbexpr_of env ~lbase ~pid ~q y
      | Bdyn fx -> (
          match cbexpr_of env ~lbase ~pid ~q y with
          | Bconst true -> Bdyn (fun m -> fx m || true)
          | Bconst false -> Bdyn fx
          | Bdyn fy -> Bdyn (fun m -> fx m || fy m)))
  | Cmp (c, x, y) -> (
      match
        (cexpr_of env ~lbase ~pid ~q x, cexpr_of env ~lbase ~pid ~q y)
      with
      | Const a, Const b -> Bconst (Ast.compare_with c a b)
      | cx, cy -> (
          let fx = force cx and fy = force cy in
          match c with
          | Ast.Clt -> Bdyn (fun m -> fx m < fy m)
          | Cle -> Bdyn (fun m -> fx m <= fy m)
          | Ceq -> Bdyn (fun m -> fx m = fy m)
          | Cne -> Bdyn (fun m -> fx m <> fy m)
          | Cgt -> Bdyn (fun m -> fx m > fy m)
          | Cge -> Bdyn (fun m -> fx m >= fy m)))
  | Lex_lt ((a, b1), (c, d)) ->
      (* The interpreter evaluates all four components up front. *)
      let fa = force (cexpr_of env ~lbase ~pid ~q a)
      and fb = force (cexpr_of env ~lbase ~pid ~q b1)
      and fc = force (cexpr_of env ~lbase ~pid ~q c)
      and fd = force (cexpr_of env ~lbase ~pid ~q d) in
      Bdyn
        (fun m ->
          let a = fa m and b1 = fb m and c = fc m and d = fd m in
          a < c || (a = c && b1 < d))
  | Qexists (range, p) ->
      unroll env ~lbase ~pid ~q:() range p ~neutral:false ~join:(fun acc part ->
          match (acc, part) with
          | Bconst true, _ -> Bconst true
          | Bconst false, part -> part
          | acc, Bconst false -> acc
          | Bdyn fx, part ->
              let fy = bforce part in
              Bdyn (fun m -> fx m || fy m))
  | Qall (range, p) ->
      unroll env ~lbase ~pid ~q:() range p ~neutral:true ~join:(fun acc part ->
          match (acc, part) with
          | Bconst false, _ -> Bconst false
          | Bconst true, part -> part
          | acc, Bconst true -> acc
          | Bdyn fx, part ->
              let fy = bforce part in
              Bdyn (fun m -> fx m && fy m))

(* Unroll a quantifier body over the in-range process indices, joining
   the per-index instantiations left to right (preserving the
   interpreter's 0..N-1 short-circuit order). *)
and unroll env ~lbase ~pid ~q:() range p ~neutral ~join =
  let acc = ref (Bconst neutral) in
  for i = 0 to env.Eval.nprocs - 1 do
    if Eval.in_range ~pid range i then
      acc := join !acc (cbexpr_of env ~lbase ~pid ~q:(Some i) p)
  done;
  !acc

(* ------------------------------------------------------------ actions *)

type caction = {
  enabled : int array -> bool;  (** the guard, against the flat image *)
  perform : int array -> unit;
      (** apply all effects in place, simultaneous-assignment semantics *)
  perform_rw : read:int array -> write:int array -> unit;
      (** split-image variant: evaluate against [read], store into
          [write]; the two must not alias *)
  target : int;
}

(* One effect, staged: where to write and what to write. *)
let ceffect env ~lbase ~pid ((l, e) : Ast.lhs * Ast.expr) =
  let value = force (cexpr_of env ~lbase ~pid ~q:None e) in
  let dest =
    match l with
    | Ast.Lo l -> Const (lbase + l)
    | Ast.Sh (v, ix) -> (
        let o = env.Eval.offsets.(v)
        and n = Ast.cells_of ~nprocs:env.Eval.nprocs env.Eval.program v in
        match cexpr_of env ~lbase ~pid ~q:None ix with
        | Const i when i >= 0 && i < n -> Const (o + i)
        | Const i -> Dyn (fun _ -> raise (Error (write_error env v i)))
        | Dyn f ->
            Dyn
              (fun m ->
                let i = f m in
                if i < 0 || i >= n then raise (Error (write_error env v i));
                o + i))
  in
  (dest, value)

let cperform env ~lbase ~pid (effects : (Ast.lhs * Ast.expr) list) =
  match List.map (ceffect env ~lbase ~pid) effects with
  | [] -> fun _ -> ()
  (* Every destination is either a compile-time-validated constant cell
     or range-checked by its [Dyn] closure, so the stores are unchecked. *)
  | [ (d, v) ] -> (
      match d with
      | Const d -> fun m -> Array.unsafe_set m d (v m)
      | Dyn fd ->
          fun m ->
            let value = v m in
            let d = fd m in
            Array.unsafe_set m d value)
  | [ (d1, v1); (d2, v2) ] ->
      let fd1 = force d1 and fd2 = force d2 in
      fun m ->
        let x1 = v1 m in
        let d1 = fd1 m in
        let x2 = v2 m in
        let d2 = fd2 m in
        Array.unsafe_set m d1 x1;
        Array.unsafe_set m d2 x2
  | [ (d1, v1); (d2, v2); (d3, v3) ] ->
      let fd1 = force d1 and fd2 = force d2 and fd3 = force d3 in
      fun m ->
        let x1 = v1 m in
        let d1 = fd1 m in
        let x2 = v2 m in
        let d2 = fd2 m in
        let x3 = v3 m in
        let d3 = fd3 m in
        Array.unsafe_set m d1 x1;
        Array.unsafe_set m d2 x2;
        Array.unsafe_set m d3 x3
  | many ->
      (* General case: evaluate every (value, destination) pair against
         the pre-state, then write in declaration order. *)
      let pairs =
        Array.of_list (List.map (fun (d, v) -> (force d, v)) many)
      in
      let k = Array.length pairs in
      fun m ->
        let staged = Array.make (2 * k) 0 in
        for j = 0 to k - 1 do
          let fd, fv = pairs.(j) in
          staged.(2 * j) <- fv m;
          staged.((2 * j) + 1) <- fd m
        done;
        for j = 0 to k - 1 do
          m.(staged.((2 * j) + 1)) <- staged.(2 * j)
        done

(* Split-image effect application: every right-hand side and every
   destination index is evaluated against [read], every store lands in
   [write].  Because the two images never alias (the weak engine passes
   a flickered view and a scratch successor), the stores can be direct
   — nothing staged here can observe them — and declaration order
   preserves the atomic last-write-wins outcome. *)
let cperform_rw env ~lbase ~pid (effects : (Ast.lhs * Ast.expr) list) =
  let pairs =
    Array.of_list
      (List.map
         (fun eff ->
           let d, v = ceffect env ~lbase ~pid eff in
           (force d, v))
         effects)
  in
  let k = Array.length pairs in
  fun ~read ~write ->
    for j = 0 to k - 1 do
      let fd, fv = Array.unsafe_get pairs j in
      let value = fv read in
      let d = fd read in
      Array.unsafe_set write d value
    done

let caction_of env ~lbase ~pid (a : Ast.action) =
  {
    enabled = bforce (cbexpr_of env ~lbase ~pid ~q:None a.guard);
    perform = cperform env ~lbase ~pid a.effects;
    perform_rw = cperform_rw env ~lbase ~pid a.effects;
    target = a.target;
  }

type t = {
  env : Eval.env;
  actions : caction array array array;
      (** [actions.(pc).(pid).(alt)], alternatives in declaration order *)
}

let compile (env : Eval.env) ~local_base =
  let p = env.program in
  let actions =
    Array.map
      (fun (step : Ast.step) ->
        Array.init env.nprocs (fun pid ->
            let lbase = local_base pid in
            Array.of_list
              (List.map (caction_of env ~lbase ~pid) step.actions)))
      p.steps
  in
  { env; actions }

let actions t ~pc ~pid = t.actions.(pc).(pid)

(* Standalone compilation of a single expression/boolean, used by the
   differential tests and by callers that evaluate against a flat image
   outside any quantifier. *)
let expr env ~local_base ~pid e =
  force (cexpr_of env ~lbase:(local_base pid) ~pid ~q:None e)

let bexpr env ~local_base ~pid b =
  bforce (cbexpr_of env ~lbase:(local_base pid) ~pid ~q:None b)
