exception Error of string

type env = {
  program : Ast.program;
  nprocs : int;
  bound : int;
  offsets : int array;
  shared_cells : int;
}

let make_env (p : Ast.program) ~nprocs ~bound =
  if nprocs <= 0 then raise (Error "make_env: nprocs must be positive");
  if bound < 1 then raise (Error "make_env: bound must be at least 1");
  let offsets = Array.make p.nvars 0 in
  let total = ref 0 in
  for v = 0 to p.nvars - 1 do
    offsets.(v) <- !total;
    total := !total + Ast.cells_of ~nprocs p v
  done;
  { program = p; nprocs; bound; offsets; shared_cells = !total }

let offset env v = env.offsets.(v)

let cells env v = Ast.cells_of ~nprocs:env.nprocs env.program v

let init_shared env =
  let a = Array.make env.shared_cells 0 in
  for v = 0 to env.program.nvars - 1 do
    let o = env.offsets.(v) and n = cells env v in
    Array.fill a o n env.program.init_shared.(v)
  done;
  a

let init_locals env = Array.copy env.program.init_locals

let read env shared v idx =
  let n = cells env v in
  if idx < 0 || idx >= n then
    raise
      (Error
         (Printf.sprintf "read %s[%d]: index out of range 0..%d"
            env.program.var_names.(v) idx (n - 1)));
  shared.(env.offsets.(v) + idx)

(* [q] is the index bound by the innermost enclosing quantifier;
   [-1] when no quantifier is open. *)
let rec eval_q env ~shared ~locals ~pid ~q (e : Ast.expr) =
  match e with
  | Int k -> k
  | N -> env.nprocs
  | M -> env.bound
  | Pid -> pid
  | Qidx -> if q < 0 then raise (Error "Qidx used outside a quantifier") else q
  | Local l -> locals.(l)
  | Rd (v, ix) -> read env shared v (eval_q env ~shared ~locals ~pid ~q ix)
  | Add (a, b) ->
      eval_q env ~shared ~locals ~pid ~q a + eval_q env ~shared ~locals ~pid ~q b
  | Sub (a, b) ->
      eval_q env ~shared ~locals ~pid ~q a - eval_q env ~shared ~locals ~pid ~q b
  | Mul (a, b) ->
      eval_q env ~shared ~locals ~pid ~q a * eval_q env ~shared ~locals ~pid ~q b
  | Mod (a, b) ->
      let d = eval_q env ~shared ~locals ~pid ~q b in
      if d = 0 then raise (Error "modulo by zero");
      ((eval_q env ~shared ~locals ~pid ~q a mod d) + d) mod d
  | Max_arr v ->
      let o = env.offsets.(v) and n = cells env v in
      let best = ref shared.(o) in
      for i = 1 to n - 1 do
        if shared.(o + i) > !best then best := shared.(o + i)
      done;
      !best
  | Ite (c, a, b) ->
      if eval_bq env ~shared ~locals ~pid ~q c then
        eval_q env ~shared ~locals ~pid ~q a
      else eval_q env ~shared ~locals ~pid ~q b

and in_range ~pid range i =
  match range with
  | Ast.Rall -> true
  | Rothers -> i <> pid
  | Rbelow -> i < pid
  | Rabove -> i > pid

and eval_bq env ~shared ~locals ~pid ~q (b : Ast.bexpr) =
  match b with
  | True -> true
  | False -> false
  | Not x -> not (eval_bq env ~shared ~locals ~pid ~q x)
  | And (x, y) ->
      eval_bq env ~shared ~locals ~pid ~q x
      && eval_bq env ~shared ~locals ~pid ~q y
  | Or (x, y) ->
      eval_bq env ~shared ~locals ~pid ~q x
      || eval_bq env ~shared ~locals ~pid ~q y
  | Cmp (c, x, y) ->
      Ast.compare_with c
        (eval_q env ~shared ~locals ~pid ~q x)
        (eval_q env ~shared ~locals ~pid ~q y)
  | Lex_lt ((a, b1), (c, d)) ->
      let a = eval_q env ~shared ~locals ~pid ~q a
      and b1 = eval_q env ~shared ~locals ~pid ~q b1
      and c = eval_q env ~shared ~locals ~pid ~q c
      and d = eval_q env ~shared ~locals ~pid ~q d in
      a < c || (a = c && b1 < d)
  | Qexists (range, p) ->
      let rec loop i =
        i < env.nprocs
        && ((in_range ~pid range i
            && eval_bq env ~shared ~locals ~pid ~q:i p)
           || loop (i + 1))
      in
      loop 0
  | Qall (range, p) ->
      let rec loop i =
        i >= env.nprocs
        || (((not (in_range ~pid range i))
            || eval_bq env ~shared ~locals ~pid ~q:i p)
           && loop (i + 1))
      in
      loop 0

let eval env ~shared ~locals ~pid e = eval_q env ~shared ~locals ~pid ~q:(-1) e

let eval_b env ~shared ~locals ~pid b =
  eval_bq env ~shared ~locals ~pid ~q:(-1) b

let enabled_actions env ~shared ~locals ~pid ~pc =
  let step = env.program.steps.(pc) in
  List.filter (fun (a : Ast.action) -> eval_b env ~shared ~locals ~pid a.guard) step.actions

let apply_split env ~rshared ~shared ~locals ~pid (a : Ast.action) =
  (* Simultaneous assignment: evaluate every right-hand side and every
     destination index in the pre-state — reading shared cells from
     [rshared], which under a weak register model may be a flickered
     view of [shared] — then write into [shared]/[locals]. *)
  let writes =
    List.map
      (fun (l, e) ->
        let value = eval env ~shared:rshared ~locals ~pid e in
        match l with
        | Ast.Lo l -> `Local (l, value)
        | Ast.Sh (v, ix) ->
            let idx = eval env ~shared:rshared ~locals ~pid ix in
            let n = cells env v in
            if idx < 0 || idx >= n then
              raise
                (Error
                   (Printf.sprintf "write %s[%d]: index out of range"
                      env.program.var_names.(v) idx));
            `Shared (env.offsets.(v) + idx, value))
      a.effects
  in
  List.iter
    (function
      | `Local (l, value) -> locals.(l) <- value
      | `Shared (cell, value) -> shared.(cell) <- value)
    writes

let apply env ~shared ~locals ~pid (a : Ast.action) =
  apply_split env ~rshared:shared ~shared ~locals ~pid a
