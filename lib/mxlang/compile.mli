(** Staged compilation of mxlang to closure-based native code.

    Where {!Eval} interprets the AST recursively on every evaluation,
    this pass compiles each expression once — per executing process —
    into a closure over a single flat memory image.  The image layout is
    the model checker's packed state: the shared cells at the offsets of
    {!Eval.env}, and process [p]'s locals starting at [local_base p]
    (program counters, which mxlang expressions cannot read, may live
    anywhere else in the image).

    Because [pid] is fixed at compile time, quantifier ranges unroll
    statically against the known process count, [Qidx] becomes a
    constant inside each unrolled instantiation, and constant folding
    turns most shared reads into fixed-offset loads.

    Dynamic errors (out-of-range indices, modulo by zero, [Qidx] outside
    a quantifier) raise {!Eval.Error} with the interpreter's messages at
    the same evaluation points; compilation itself never raises on a
    validated program.

    Compiled closures elide bounds checks for offsets proven in range at
    compile time, so the image passed to them MUST cover the full layout
    (every shared cell and every [local_base p + nlocals] offset);
    evaluating against a shorter array is undefined behaviour. *)

type caction = {
  enabled : int array -> bool;
      (** the action's guard, evaluated directly against the image *)
  perform : int array -> unit;
      (** apply all effects in place with simultaneous-assignment
          semantics (every right-hand side and destination index is
          evaluated against the pre-state before any write) *)
  perform_rw : read:int array -> write:int array -> unit;
      (** split-image variant for the weak-register engine: evaluate
          every right-hand side and destination index against [read]
          (e.g. a flickered view of the pre-state) and store into
          [write] (the successor under construction).  The images must
          not alias; stores are applied in declaration order. *)
  target : int;  (** the destination label; the caller updates the pc *)
}

type t = {
  env : Eval.env;
  actions : caction array array array;
      (** [actions.(pc).(pid).(alt)], alternatives in declaration
          order *)
}

val compile : Eval.env -> local_base:(int -> int) -> t
(** Compile every action of every step for every process id.
    [local_base pid] gives the offset of [pid]'s locals in the image. *)

val actions : t -> pc:int -> pid:int -> caction array

val expr : Eval.env -> local_base:(int -> int) -> pid:int -> Ast.expr -> int array -> int
(** Compile one integer expression (outside any quantifier). *)

val bexpr : Eval.env -> local_base:(int -> int) -> pid:int -> Ast.bexpr -> int array -> bool
(** Compile one boolean expression (outside any quantifier). *)
