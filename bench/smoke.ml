(* Bench smoke gate (`dune build @bench-smoke`, part of `@ci`): a
   fast sanity check that the sharded parallel engine has not fallen
   off a cliff relative to itself at one domain.

   It runs one small exhaustive Bakery++ configuration under pool1 and
   pool4, checks both agree with the sequential engine bit-exactly
   (Pass outcomes pin distinct/generated/depth), and gates on the
   throughput ratio pool4/pool1.

   The tolerance is deliberately lenient: on a multi-core host pool4
   should beat pool1 outright (ratio >= 1), but CI for this repo runs
   on a single recognized core, where four domains time-share one CPU
   and the deque/hand-off coordination is pure overhead.  Measured
   single-core ratios on the reference host sit around 0.2-0.9
   depending on scheduler luck; the gate only catches collapses below
   [min_ratio] (e.g. a livelocking quiescence protocol or a spin loop
   that stops yielding), not the absence of parallel speedup the
   hardware cannot provide. *)

let min_ratio = 0.05
let reps = 3

let () =
  let prog = Core.Bakery_pp_model.program () in
  let sys = Modelcheck.System.make prog ~nprocs:3 ~bound:2 in
  let best f =
    let r0 : Modelcheck.Explore.result = f () in
    let best = ref r0 in
    for _ = 2 to reps do
      let r : Modelcheck.Explore.result = f () in
      if r.stats.runtime < !best.stats.runtime then best := r
    done;
    !best
  in
  let seq = best (fun () -> Modelcheck.Explore.run sys) in
  let pool1 = best (fun () -> Modelcheck.Par_explore.run ~domains:1 sys) in
  let pool4 = best (fun () -> Modelcheck.Par_explore.run ~domains:4 sys) in
  let describe name (r : Modelcheck.Explore.result) =
    Printf.printf "bench-smoke %-6s distinct=%d generated=%d depth=%d %.4fs\n"
      name r.stats.distinct r.stats.generated r.stats.depth r.stats.runtime
  in
  describe "seq" seq;
  describe "pool1" pool1;
  describe "pool4" pool4;
  let fail fmt = Printf.ksprintf (fun m -> prerr_endline m; exit 1) fmt in
  List.iter
    (fun (name, (r : Modelcheck.Explore.result)) ->
      if r.outcome <> Modelcheck.Explore.Pass then
        fail "bench-smoke: %s did not Pass on bakery_pp n3 m2" name;
      if
        r.stats.distinct <> seq.stats.distinct
        || r.stats.generated <> seq.stats.generated
        || r.stats.depth <> seq.stats.depth
      then
        fail
          "bench-smoke: %s disagrees with sequential (distinct %d vs %d, \
           generated %d vs %d, depth %d vs %d)"
          name r.stats.distinct seq.stats.distinct r.stats.generated
          seq.stats.generated r.stats.depth seq.stats.depth)
    [ ("pool1", pool1); ("pool4", pool4) ];
  let sps (r : Modelcheck.Explore.result) =
    if r.stats.runtime > 0.0 then
      float_of_int r.stats.distinct /. r.stats.runtime
    else infinity
  in
  let ratio = sps pool4 /. sps pool1 in
  Printf.printf "bench-smoke ratio pool4/pool1 = %.2f (gate: >= %.2f)\n%!"
    ratio min_ratio;
  if ratio < min_ratio then
    fail
      "bench-smoke: pool4 states/sec collapsed to %.2fx of pool1 (gate %.2f) \
       — parallel engine regression"
      ratio min_ratio;
  (* ---------------------------------------------- weak registers (~1s) *)
  (* One exhaustive Bakery++ run over safe registers: the weak engine
     must still pass mutex & no-overflow, the compiled and interpreted
     successor engines must agree on the two-phase state space, and an
     explicitly-atomic system must stay bit-identical to the default
     build — the three regsem invariants @ci relies on. *)
  let weak =
    Modelcheck.System.make ~register_model:Regsem.Model.Safe prog ~nprocs:2
      ~bound:3
  in
  let wr = Modelcheck.Explore.run weak in
  let wi = Modelcheck.Explore.run ~interpreted:true weak in
  Printf.printf "bench-smoke safe   distinct=%d generated=%d depth=%d %.4fs\n"
    wr.stats.distinct wr.stats.generated wr.stats.depth wr.stats.runtime;
  if wr.outcome <> Modelcheck.Explore.Pass then
    fail "bench-smoke: bakery_pp n2 m3 did not Pass over safe registers";
  if
    wi.outcome <> wr.outcome
    || wi.stats.distinct <> wr.stats.distinct
    || wi.stats.generated <> wr.stats.generated
    || wi.stats.depth <> wr.stats.depth
  then
    fail
      "bench-smoke: compiled and interpreted engines disagree over safe \
       registers (distinct %d vs %d, generated %d vs %d, depth %d vs %d)"
      wr.stats.distinct wi.stats.distinct wr.stats.generated
      wi.stats.generated wr.stats.depth wi.stats.depth;
  let atomic_sys =
    Modelcheck.System.make ~register_model:Regsem.Model.Atomic prog ~nprocs:3
      ~bound:2
  in
  let ar = Modelcheck.Explore.run atomic_sys in
  if
    ar.outcome <> seq.outcome
    || ar.stats.distinct <> seq.stats.distinct
    || ar.stats.generated <> seq.stats.generated
    || ar.stats.depth <> seq.stats.depth
  then
    fail
      "bench-smoke: an explicitly-atomic system diverged from the default \
       build (distinct %d vs %d)"
      ar.stats.distinct seq.stats.distinct;
  (* ---------------------------------------------- reduction leg (~1s) *)
  (* Reduced-vs-full verdict agreement on two registry models — one
     passing (ticket_mod: quotient must match the full Pass exactly,
     with a minimum reduction ratio so a silently-identity canonizer
     fails the gate) and one violating (ticket: both reduced modes must
     still find the no-overflow bug).  Mirrors the fuzz `reduced`
     oracle as a deterministic @ci gate. *)
  let check_reduced name ~nprocs ~bound ~min_sym_ratio =
    let sys =
      Modelcheck.System.make (Harness.Registry.find_model name) ~nprocs ~bound
    in
    let run reduce = Modelcheck.Explore.run ~reduce sys in
    let full = run Modelcheck.Reduce.Off in
    List.iter
      (fun mode ->
        let r = run mode in
        let ms = Modelcheck.Reduce.mode_to_string mode in
        Printf.printf
          "bench-smoke reduce %s %-7s distinct=%d (full %d) %s\n" name ms
          r.stats.distinct full.stats.distinct
          (Modelcheck.Explore.outcome_tag r.outcome);
        (match (full.outcome, r.outcome) with
        | Modelcheck.Explore.Pass, Modelcheck.Explore.Pass -> ()
        | ( ( Modelcheck.Explore.Violation _ | Modelcheck.Explore.Deadlock _ ),
            ( Modelcheck.Explore.Violation _ | Modelcheck.Explore.Deadlock _ )
          ) ->
            ()
        | _ ->
            fail
              "bench-smoke: %s under --reduce %s reports %s but the full \
               search reports %s"
              name ms
              (Modelcheck.Explore.outcome_tag r.outcome)
              (Modelcheck.Explore.outcome_tag full.outcome));
        if full.outcome = Modelcheck.Explore.Pass then begin
          let ratio =
            float_of_int full.stats.distinct /. float_of_int r.stats.distinct
          in
          if ratio < min_sym_ratio then
            fail
              "bench-smoke: %s quotient under %s is only %.1fx smaller than \
               the full search (gate: >= %.1fx) — reduction inactive?"
              name ms ratio min_sym_ratio
        end)
      [ Modelcheck.Reduce.Sym; Modelcheck.Reduce.Sym_por ]
  in
  check_reduced "ticket_mod" ~nprocs:3 ~bound:3 ~min_sym_ratio:3.0;
  check_reduced "ticket" ~nprocs:3 ~bound:3 ~min_sym_ratio:1.0;
  (* ------------------------------------------------- locks smoke (~2s) *)
  (* One tiny open-loop cell against Bakery++: the scorecard JSON must
     round-trip through the persisted-row codec with the SLO verdict
     intact, and a second run with the same seed must reproduce every
     non-timing field — the two invariants `bakery_cli bench locks`
     relies on. *)
  let resolve = Harness.Experiments.lock_resolver ~bound:32 () in
  let cell () =
    Workload.Suite.run_cell resolve ~virtual_bound:32 ~algo:"bakery_pp"
      ~nprocs:2 ~rate:2_000.0 ~budget:(Workload.Openloop.Ops 400) ~seed:11 ()
  in
  let card = cell () in
  Printf.printf
    "bench-smoke locks  goodput=%.0f/s p99=%dns issued=%d sched_fp=%s slo=%b\n"
    card.goodput card.p99_ns card.issued card.sched_fp card.slo_pass;
  (match Workload.Scorecard.of_json (Workload.Scorecard.to_json card) with
  | Error e -> fail "bench-smoke: scorecard does not round-trip: %s" e
  | Ok back ->
      if back <> card then
        fail "bench-smoke: scorecard JSON round-trip changed a field";
      if back.slo_reasons <> [] && back.slo_pass then
        fail "bench-smoke: SLO verdict inconsistent with its reasons");
  let again = cell () in
  if
    Workload.Scorecard.deterministic_fields again
    <> Workload.Scorecard.deterministic_fields card
  then
    fail
      "bench-smoke: same-seed rerun changed a deterministic scorecard field";
  if card.issued <> 400 || card.completed <> 400 then
    fail "bench-smoke: ops budget 400 not honoured (issued %d completed %d)"
      card.issued card.completed;
  (* ------------------------------------------------ report leg (~1s) *)
  (* A tiny push-mode flight record rendered twice through Obs.Report:
     the render must be a pure function of its input (byte-identical
     re-render) — the determinism contract `bakery_cli report` and the
     golden tests rely on. *)
  let recorder = Obs.Recorder.create () in
  let flight_cell () =
    Workload.Suite.run_cell resolve ~flight:recorder ~virtual_bound:32
      ~algo:"bakery_pp" ~nprocs:2 ~rate:2_000.0
      ~budget:(Workload.Openloop.Ops 200) ~seed:7 ()
  in
  ignore (flight_cell ());
  Obs.Recorder.stop recorder;
  let samples = Obs.Recorder.samples recorder in
  if List.length samples < 2 then
    fail "bench-smoke: flight recorder captured %d sample(s) from the cell"
      (List.length samples);
  let input =
    {
      Obs.Report.empty with
      Obs.Report.flight = samples;
      bench = [ Workload.Scorecard.to_json card ];
    }
  in
  let r1 = Obs.Report.render input in
  let r2 = Obs.Report.render input in
  if r1 <> r2 then fail "bench-smoke: report re-render is not byte-identical";
  if String.length r1 < 200 then
    fail "bench-smoke: report suspiciously short (%d bytes)"
      (String.length r1);
  Printf.printf "bench-smoke report %d flight sample(s), %d bytes, re-render identical\n"
    (List.length samples) (String.length r1);
  print_endline "bench-smoke: OK"
