(* Benchmark driver: regenerates every experiment table (E1-E10, see
   DESIGN.md / EXPERIMENTS.md) plus Bechamel microbenchmarks of the
   uncontended acquire/release path of every lock in the zoo.

   Usage:
     dune exec bench/main.exe              # everything, full sizes
     dune exec bench/main.exe -- --quick   # everything, small sizes
     dune exec bench/main.exe -- e4 e6     # selected experiments
     dune exec bench/main.exe -- micro     # microbenchmarks only
     dune exec bench/main.exe -- --json out.json e11
                                           # machine-readable results
     dune exec bench/main.exe -- --check-regress e11
                                           # perf gate against prior datapoints

   Experiments that record datapoints (currently E11/E12/E14/E15) also leave
   BENCH_modelcheck.json in the working directory, so perf trajectories
   can be tracked across PRs.  [--check-regress] compares every fresh
   states/sec datapoint against the best prior one for the same metric
   and exits non-zero on a >15% regression.  Prior rows predating the
   timestamp/engine stamping are marked ["legacy": true] on the next
   rewrite; rows without a string metric and numeric value are skipped
   by the gate. *)

let say fmt = Printf.printf fmt

(* ------------------------------------------------------ JSON output *)

(* One datapoint -> one JSON object, stamped with when and where it was
   measured so BENCH_modelcheck.json stays comparable across PRs. *)
let datapoint_json ~timestamp (dp : Harness.Experiments.datapoint) =
  let open Telemetry.Json in
  let opt name v = match v with Some x -> [ (name, x) ] | None -> [] in
  Obj
    ([
       ("experiment", Str dp.dp_exp);
       ("metric", Str dp.dp_metric);
       ("value", Num dp.dp_value);
       ("timestamp", Num timestamp);
     ]
    @ opt "engine" (Option.map (fun e -> Str e) dp.dp_engine)
    @ opt "wall_s" (Option.map (fun w -> Num w) dp.dp_wall_s)
    @ Telemetry.Runmeta.to_fields (Telemetry.Runmeta.capture ())
    @ Telemetry.Metrics.gc_fields ())

(* One lock scorecard -> one BENCH_locks.json row: the full scorecard
   object, any experiment-supplied extra fields (E16's drift verdicts),
   plus the same timestamp/runmeta/GC stamping the datapoints get, so
   rows from different PRs and machines stay comparable. *)
let card_json ~timestamp (card, extra) =
  let open Telemetry.Json in
  match Workload.Scorecard.to_json card with
  | Obj fields ->
      Obj
        (fields @ extra
        @ [ ("timestamp", Num timestamp) ]
        @ Telemetry.Runmeta.to_fields (Telemetry.Runmeta.capture ())
        @ Telemetry.Metrics.gc_fields ())
  | j -> j

let write_json_values path values =
  let oc = open_out path in
  output_string oc "[\n";
  let last = List.length values - 1 in
  List.iteri
    (fun i v ->
      Printf.fprintf oc "  %s%s\n"
        (Telemetry.Json.to_string v)
        (if i = last then "" else ","))
    values;
  output_string oc "]\n";
  close_out oc;
  say "wrote %d datapoint(s) to %s\n%!" (List.length values) path

(* Rows written before the driver stamped timestamp/engine metadata
   cannot be placed on a timeline; mark them ["legacy": true] once so
   downstream tooling (and the regress gate's log) can tell them apart.
   Already-stamped and already-marked rows pass through untouched. *)
let backfill_legacy v =
  let open Telemetry.Json in
  match v with
  | Obj fields
    when (not (List.mem_assoc "timestamp" fields)
         || not (List.mem_assoc "engine" fields))
         && not (List.mem_assoc "legacy" fields) ->
      Obj (fields @ [ ("legacy", Bool true) ])
  | v -> v

(* Existing datapoints in [path] (from earlier runs / earlier PRs), or
   [] when the file is absent or unreadable.  Merging instead of
   clobbering keeps the perf trajectory. *)
let existing_datapoints path =
  match open_in path with
  | exception Sys_error _ -> []
  | ic -> (
      let n = in_channel_length ic in
      let s = really_input_string ic n in
      close_in ic;
      match Telemetry.Json.parse s with
      | Ok (Telemetry.Json.Arr vs) -> List.map backfill_legacy vs
      | Ok _ | Error _ ->
          say "warning: %s exists but is not a JSON array; overwriting\n%!"
            path;
          [])

(* ------------------------------------------------------- microbenches *)

let micro_tests () =
  let bound = 1 lsl 40 in
  let tests =
    List.map
      (fun (family : Locks.Lock_intf.family) ->
        let b = if family.family_name = "ticket_mod" then 64 else bound in
        let inst = family.make ~nprocs:4 ~bound:b in
        Bechamel.Test.make ~name:family.family_name
          (Bechamel.Staged.stage (fun () ->
               inst.acquire 0;
               inst.release 0)))
      Harness.Registry.lock_families
  in
  Bechamel.Test.make_grouped ~name:"uncontended" tests

let run_micro ~quick =
  let open Bechamel in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:Measure.[| run |]
  in
  let instances = Toolkit.Instance.[ monotonic_clock ] in
  let quota = Time.second (if quick then 0.2 else 0.75) in
  let cfg = Benchmark.cfg ~limit:2000 ~quota ~kde:(Some 1000) () in
  let raw = Benchmark.all cfg instances (micro_tests ()) in
  let results =
    Analyze.merge ols instances
      (List.map (fun instance -> Analyze.all ols instance raw) instances)
  in
  let table =
    Harness.Table.make
      ~title:
        "uB (paper §7 practicality): uncontended acquire+release latency, \
         one domain"
      ~notes:
        [
          "nanoseconds per lock/unlock pair on an otherwise idle lock \
           created for 4 participants";
          "the bakery family pays an O(N) doorway scan even uncontended; \
           tas/ttas/ticket pay one atomic RMW";
        ]
      [ "lock"; "ns/op"; "r^2" ]
  in
  let clock = Toolkit.Instance.monotonic_clock in
  let per_clock = Hashtbl.find results (Measure.label clock) in
  let rows = ref [] in
  Hashtbl.iter
    (fun name ols_result ->
      let ns =
        match Analyze.OLS.estimates ols_result with
        | Some (x :: _) -> x
        | Some [] | None -> nan
      in
      let r2 =
        match Analyze.OLS.r_square ols_result with Some r -> r | None -> nan
      in
      rows := (name, ns, r2) :: !rows)
    per_clock;
  List.iter
    (fun (name, ns, r2) ->
      let short =
        match String.index_opt name '/' with
        | Some i -> String.sub name (i + 1) (String.length name - i - 1)
        | None -> name
      in
      Harness.Table.add_rowf table "%s|%.1f|%.3f" short ns r2)
    (List.sort (fun (_, a, _) (_, b, _) -> compare a b) !rows);
  print_string (Harness.Table.render table);
  print_newline ()

(* ------------------------------------------------------------- driver *)

let run_experiment ~quick (e : Harness.Experiments.experiment) =
  say "---------------------------------------------------------------\n";
  say "%s: %s\n\n%!" (String.uppercase_ascii e.id) e.summary;
  let t0 = Unix.gettimeofday () in
  List.iter
    (fun table ->
      print_string (Harness.Table.render table);
      print_newline ())
    (e.run ~quick);
  say "(%s took %.1fs)\n\n%!" e.id (Unix.gettimeofday () -. t0)

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  (* value flags first: "--json --quick out.json" must be an error, not
     a silent misparse once --quick has been stripped *)
  let json_path, args =
    match Harness.Argscan.extract_value ~docv:"FILE" ~flag:"--json" args with
    | Ok (p, rest) -> (p, rest)
    | Error msg ->
        prerr_endline msg;
        exit 2
  in
  let quick, args = Harness.Argscan.extract_presence ~flag:"--quick" args in
  let check_regress, args =
    Harness.Argscan.extract_presence ~flag:"--check-regress" args
  in
  let wanted = if args = [] then [ "all" ] else args in
  let all_ids = List.map (fun e -> e.Harness.Experiments.id) Harness.Experiments.all in
  say "Bakery++ reproduction bench driver (mode: %s)\n"
    (if quick then "quick" else "full");
  say "Machine: %d core(s) recognized by OCaml; spin loops yield (see \
       Registers.Spin).\n\n%!"
    (Domain.recommended_domain_count ());
  List.iter
    (fun id ->
      match id with
      | "all" ->
          List.iter (run_experiment ~quick) Harness.Experiments.all;
          List.iter
            (fun (_, chart) ->
              print_string chart;
              print_newline ())
            (Harness.Figures.all ~quick);
          run_micro ~quick
      | "micro" -> run_micro ~quick
      | "figures" ->
          List.iter
            (fun (_, chart) ->
              print_string chart;
              print_newline ())
            (Harness.Figures.all ~quick)
      | id when List.mem id all_ids ->
          run_experiment ~quick (Harness.Experiments.find id)
      | id ->
          say "unknown experiment %S; known: %s, micro, all\n" id
            (String.concat ", " all_ids ^ ", figures");
          exit 2)
    wanted;
  let timestamp = Unix.time () in
  let raw_dps = Harness.Experiments.take_metrics () in
  let cards = Harness.Experiments.take_scorecards () in
  let metrics = List.map (datapoint_json ~timestamp) raw_dps in
  (match json_path with
  | Some path -> write_json_values path metrics
  | None -> ());
  let modelcheck =
    List.filter
      (fun v ->
        match Telemetry.Json.member "experiment" v with
        | Some (Telemetry.Json.Str ("e11" | "e12" | "e14" | "e15")) -> true
        | _ -> false)
      metrics
  in
  let path = "BENCH_modelcheck.json" in
  (* Prior datapoints are read before the merge: the gate compares the
     fresh run against history, not against itself. *)
  let prior = existing_datapoints path in
  if modelcheck <> [] then write_json_values path (prior @ modelcheck);
  let locks_path = "BENCH_locks.json" in
  let locks_prior =
    match Workload.Suite.load_rows locks_path with
    | Ok rows -> rows
    | Error reason ->
        (* Skip, never crash: a hand-damaged history file degrades the
           gate to "no prior", it does not take the bench down. *)
        say "warning: %s; treating prior scorecards as empty\n%!" reason;
        []
  in
  let fresh_cards = List.map (card_json ~timestamp) cards in
  if fresh_cards <> [] then begin
    Workload.Suite.write_rows locks_path (locks_prior @ fresh_cards);
    say "wrote %d scorecard(s) to %s\n%!" (List.length fresh_cards) locks_path
  end;
  if check_regress then begin
    let fresh =
      List.filter
        (fun (dp : Harness.Experiments.datapoint) ->
          (dp.dp_exp = "e11" || dp.dp_exp = "e12" || dp.dp_exp = "e14"
           || dp.dp_exp = "e15")
          && String.ends_with ~suffix:"/states_per_sec" dp.dp_metric)
        raw_dps
    in
    if fresh = [] && cards = [] then begin
      prerr_endline
        "--check-regress: the run recorded no e11/e12/e14/e15 states/sec \
         datapoints and no lock scorecards (include e11, e12, e13, e14 or e15 \
         in the experiment list)";
      exit 2
    end;
    (* A prior row participates in the baseline only if it carries a
       string metric and a numeric value; anything else (hand-edited,
       truncated, or foreign rows) is skipped rather than crashing or
       poisoning the max. *)
    let malformed =
      List.length
        (List.filter
           (fun v ->
             match
               ( Telemetry.Json.member "metric" v,
                 Telemetry.Json.member "value" v )
             with
             | Some (Telemetry.Json.Str _), Some (Telemetry.Json.Num _) ->
                 false
             | _ -> true)
           prior)
    in
    if malformed > 0 then
      say "regress-check: skipping %d malformed prior row(s)\n" malformed;
    let best_prior metric =
      List.fold_left
        (fun best v ->
          match
            (Telemetry.Json.member "metric" v, Telemetry.Json.member "value" v)
          with
          | Some (Telemetry.Json.Str m), Some (Telemetry.Json.Num x)
            when m = metric ->
              Float.max best x
          | _ -> best)
        neg_infinity prior
    in
    let failed = ref false in
    List.iter
      (fun (dp : Harness.Experiments.datapoint) ->
        let best = best_prior dp.dp_metric in
        if best > 0.0 then begin
          let ratio = dp.dp_value /. best in
          say "regress-check %-48s fresh %10.0f  best %10.0f  ratio %.2f%s\n"
            dp.dp_metric dp.dp_value best ratio
            (if ratio < 0.85 then "  REGRESSION" else "");
          if ratio < 0.85 then failed := true
        end
        else
          say "regress-check %-48s fresh %10.0f  (no prior datapoint)\n"
            dp.dp_metric dp.dp_value)
      fresh;
    if !failed then
      prerr_endline
        "bench: states/sec regressed >15% against the best prior datapoint \
         in BENCH_modelcheck.json";
    (* Lock SLO gate: goodput must not drop and p99 must not inflate
       against the best prior scorecard for the same algo/domains/rate
       cell.  Same >15% bar as the states/sec gate. *)
    let lock_failed = ref false in
    List.iter
      (fun (g : Workload.Suite.gate) ->
        let label = g.g_key ^ "/" ^ g.g_metric in
        if Float.is_nan g.g_ratio then
          say "regress-check %-48s fresh %10.0f  (no prior scorecard)\n" label
            g.g_fresh
        else begin
          say "regress-check %-48s fresh %10.0f  best %10.0f  ratio %.2f%s\n"
            label g.g_fresh g.g_best g.g_ratio
            (if g.g_fail then "  REGRESSION" else "");
          if g.g_fail then lock_failed := true
        end)
      (Workload.Suite.regress ~prior:locks_prior (List.map fst cards));
    if !lock_failed then
      prerr_endline
        "bench: lock goodput/p99 regressed >15% against the best prior \
         scorecard in BENCH_locks.json";
    if !failed || !lock_failed then exit 1
    else say "regress-check: OK (every metric within 15%% of its best prior)\n"
  end
